(* Tests for the RFC 4271 wire codec and the MRT table-dump codec. *)

open Net
module Wire = Bgp.Wire
module Mrt = Measurement.Mrt

let victim = Testutil.victim

let attrs ?(origin = Bgp.Route.Igp) ?(local_pref = 100)
    ?(communities = Bgp.Community.Set.empty) path =
  { Wire.origin; as_path = path; local_pref; communities }

let test_roundtrip_announce () =
  let message =
    {
      Wire.withdrawn = [];
      attributes =
        Some
          (attrs
             ~communities:(Testutil.moas_communities [ 1; 2 ])
             (Bgp.As_path.of_list [ 3; 2; 1 ]));
      nlri = [ victim ];
    }
  in
  let decoded = Wire.decode (Wire.encode message) in
  Alcotest.(check bool) "roundtrip announce" true (decoded = message)

let test_roundtrip_withdraw () =
  let message =
    {
      Wire.withdrawn = [ victim; Prefix.of_string "10.0.0.0/8" ];
      attributes = None;
      nlri = [];
    }
  in
  Alcotest.(check bool) "roundtrip withdraw" true
    (Wire.decode (Wire.encode message) = message)

let test_roundtrip_as_set () =
  let path =
    [ Bgp.As_path.Seq [ 7; 5 ]; Bgp.As_path.Set (Asn.Set.of_list [ 1; 2 ]) ]
  in
  let message =
    { Wire.withdrawn = []; attributes = Some (attrs path); nlri = [ victim ] }
  in
  let decoded = Wire.decode (Wire.encode message) in
  match decoded.Wire.attributes with
  | Some a -> Alcotest.(check bool) "AS_SET survives" true (a.Wire.as_path = path)
  | None -> Alcotest.fail "attributes lost"

let test_prefix_packing () =
  (* a /8 needs one octet of network, a /24 three, a /0 none *)
  let size len =
    let p = Prefix.make (Ipv4.of_string "10.2.3.0") len in
    Wire.encoded_size { Wire.withdrawn = [ p ]; attributes = None; nlri = [] }
  in
  Alcotest.(check int) "/8 vs /0 differ by one octet" 1 (size 8 - size 0);
  Alcotest.(check int) "/24 vs /8 differ by two octets" 2 (size 24 - size 8);
  Alcotest.(check int) "/9 rounds up to two octets" (size 16) (size 9)

let test_header_and_limits () =
  let message = { Wire.withdrawn = [ victim ]; attributes = None; nlri = [] } in
  let b = Wire.encode message in
  (* marker of 16 0xff octets, then length, then type 2 *)
  for i = 0 to 15 do
    Alcotest.(check char) "marker" '\xff' (Bytes.get b i)
  done;
  Alcotest.(check int) "declared length" (Bytes.length b)
    ((Char.code (Bytes.get b 16) lsl 8) lor Char.code (Bytes.get b 17));
  Alcotest.(check int) "type UPDATE" 2 (Char.code (Bytes.get b 18))

let test_decode_rejects_garbage () =
  List.iter
    (fun (label, bytes) ->
      match Wire.decode bytes with
      | exception Wire.Malformed _ -> ()
      | _ -> Alcotest.failf "%s accepted" label)
    [
      ("empty", Bytes.empty);
      ("short", Bytes.make 10 '\xff');
      ("bad marker", Bytes.make 23 '\x00');
    ]

let test_decode_rejects_truncation () =
  let message =
    {
      Wire.withdrawn = [];
      attributes = Some (attrs (Bgp.As_path.of_list [ 1 ]));
      nlri = [ victim ];
    }
  in
  let b = Wire.encode message in
  let truncated = Bytes.sub b 0 (Bytes.length b - 2) in
  (match Wire.decode truncated with
  | exception Wire.Malformed _ -> ()
  | _ -> Alcotest.fail "truncated message accepted")

let test_update_bridge () =
  let route =
    Testutil.route ~communities:(Testutil.moas_communities [ 4; 226 ]) ~from:9
      [ 9; 4 ]
  in
  let update = Bgp.Update.announce ~sender:(Asn.make 9) route in
  let message = Wire.of_update update in
  let back = Wire.to_updates ~sender:(Asn.make 9) (Wire.decode (Wire.encode message)) in
  match back with
  | [ { Bgp.Update.payload = Bgp.Update.Announce r; _ } ] ->
    Alcotest.(check bool) "path preserved" true
      (Bgp.As_path.equal r.Bgp.Route.as_path route.Bgp.Route.as_path);
    Alcotest.(check bool) "communities preserved" true
      (Bgp.Community.Set.equal r.Bgp.Route.communities route.Bgp.Route.communities)
  | _ -> Alcotest.fail "bridge mismatch"

let test_update_size_overhead () =
  (* the Section 4.3 overhead claim in exact octets: each extra MOAS list
     entry costs exactly 4 octets on the wire *)
  let size n =
    let communities = Testutil.moas_communities (List.init n (fun i -> i + 1)) in
    Wire.update_size
      (Bgp.Update.announce ~sender:(Asn.make 9)
         (Testutil.route ~communities ~from:9 [ 9; 4 ]))
  in
  Alcotest.(check int) "4 octets per entry" 4 (size 2 - size 1);
  Alcotest.(check int) "again" 4 (size 3 - size 2);
  (* the attribute header itself costs 3 octets (flags, type, length) *)
  Alcotest.(check int) "community attribute header" 7 (size 1 - size 0)

(* A withdrawn-routes-only message of exactly [target] encoded octets:
   the empty message costs 23 (marker 16 + length 2 + type 1 + two empty
   section length fields), each /32 withdrawal 5, and shorter masks pad
   out the remainder (/24 = 4, /16 = 3, /8 = 2, /0 = 1). *)
let message_of_size target =
  let base = 23 in
  if target < base then invalid_arg "message_of_size";
  let rec fill acc remaining i =
    if remaining = 0 then acc
    else if remaining >= 5 then
      fill (Prefix.make (Ipv4.of_int i) 32 :: acc) (remaining - 5) (i + 1)
    else
      let len = [| 0; 0; 8; 16; 24 |].(remaining) in
      fill (Prefix.make (Ipv4.of_int 0) len :: acc) 0 i
  in
  { Wire.withdrawn = fill [] (target - base) 1; attributes = None; nlri = [] }

let test_max_size_boundary () =
  (* exactly 4096 octets encodes; one more raises *)
  let at_max = message_of_size Wire.max_message_size in
  Alcotest.(check int) "sized to the maximum" Wire.max_message_size
    (Wire.encoded_size at_max);
  let b = Wire.encode at_max in
  Alcotest.(check int) "encodes at exactly 4096" Wire.max_message_size
    (Bytes.length b);
  Alcotest.(check bool) "and still decodes" true
    (Wire.decode b = at_max);
  let over = message_of_size (Wire.max_message_size + 1) in
  Alcotest.(check int) "sized one octet over" (Wire.max_message_size + 1)
    (Wire.encoded_size over);
  match Wire.encode over with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "4097-octet message accepted"

let prop_boundary_exact =
  Testutil.qtest ~count:200 "encode succeeds exactly up to 4096 octets"
    (QCheck2.Gen.int_range 23 4200)
    (fun target ->
      let m = message_of_size target in
      Wire.encoded_size m = target
      &&
      match Wire.encode m with
      | b -> target <= Wire.max_message_size && Bytes.length b = target
      | exception Invalid_argument _ -> target > Wire.max_message_size)

let message_gen =
  QCheck2.Gen.(
    let path_gen =
      map
        (fun ases -> Bgp.As_path.of_list ases)
        (list_size (int_range 1 6) Testutil.asn_gen)
    in
    let prefixes = list_size (int_range 0 5) Testutil.prefix_gen in
    map3
      (fun withdrawn nlri (path, communities, lp) ->
        if nlri = [] then { Wire.withdrawn; attributes = None; nlri = [] }
        else
          {
            Wire.withdrawn;
            attributes =
              Some
                {
                  Wire.origin = Bgp.Route.Igp;
                  as_path = path;
                  local_pref = lp;
                  communities = Moas.Moas_list.encode communities;
                };
            nlri;
          })
      prefixes prefixes
      (triple path_gen Testutil.asn_set_gen (int_range 0 1000)))

let prop_wire_roundtrip =
  Testutil.qtest ~count:300 "wire encode/decode roundtrip" message_gen
    (fun message -> Wire.decode (Wire.encode message) = message)

let prop_encoded_size_exact =
  Testutil.qtest ~count:300 "encoded_size equals the buffer length"
    message_gen
    (fun message -> Wire.encoded_size message = Bytes.length (Wire.encode message))

(* ---------------- community attribute ---------------- *)

(* Arbitrary community sets — not just MOAS lists: the usage-policy model
   tags routes with location/ingress/blackhole values anywhere in the
   16-bit × 16-bit space, and all of them must survive the wire. *)
let community_set_gen =
  QCheck2.Gen.(
    map
      (fun pairs ->
        List.fold_left
          (fun acc (asn, value) ->
            Bgp.Community.Set.add (Bgp.Community.make (Asn.make asn) value) acc)
          Bgp.Community.Set.empty pairs)
      (list_size (int_range 0 12)
         (pair (int_range 1 65535) (int_range 0 65535))))

let announce_with communities =
  {
    Wire.withdrawn = [];
    attributes = Some (attrs ~communities (Bgp.As_path.of_list [ 3; 2; 1 ]));
    nlri = [ victim ];
  }

let decoded_communities message =
  match (Wire.decode (Wire.encode message)).Wire.attributes with
  | Some a -> a.Wire.communities
  | None -> Alcotest.fail "attributes lost"

let prop_community_roundtrip =
  Testutil.qtest ~count:300 "arbitrary community sets roundtrip"
    community_set_gen
    (fun communities ->
      Bgp.Community.Set.equal communities
        (decoded_communities (announce_with communities)))

(* Every strict prefix of an encoded update must be rejected: the header
   declares the total length, so a truncated community attribute can
   never be silently read as a shorter valid set. *)
let prop_community_truncation_rejected =
  Testutil.qtest ~count:60 "truncating a community-bearing update is Malformed"
    community_set_gen
    (fun communities ->
      let b = Wire.encode (announce_with communities) in
      let ok = ref true in
      for cut = 0 to Bytes.length b - 1 do
        (match Wire.decode (Bytes.sub b 0 cut) with
        | exception Wire.Malformed _ -> ()
        | _ -> ok := false)
      done;
      !ok)

let test_community_empty_and_maximal () =
  (* the empty set costs nothing on the wire and decodes back empty *)
  let empty = announce_with Bgp.Community.Set.empty in
  Alcotest.(check int) "empty set adds no octets"
    (Wire.encoded_size empty)
    (Wire.encoded_size (announce_with (Testutil.moas_communities [])));
  Alcotest.(check bool) "empty set roundtrips" true
    (Bgp.Community.Set.is_empty (decoded_communities empty));
  (* the maximal set: the largest community count that still fits the
     4096-octet ceiling roundtrips intact, one more value refuses to
     encode *)
  let set_of n =
    List.fold_left
      (fun acc i ->
        Bgp.Community.Set.add
          (Bgp.Community.make (Asn.make (1 + (i lsr 8))) (i land 0xff))
          acc)
      Bgp.Community.Set.empty
      (List.init n (fun i -> i))
  in
  let fits n = Wire.encoded_size (announce_with (set_of n)) <= Wire.max_message_size in
  let rec search lo hi =
    (* invariant: fits lo, not (fits hi) *)
    if hi - lo <= 1 then lo
    else
      let mid = (lo + hi) / 2 in
      if fits mid then search mid hi else search lo mid
  in
  let max_n = search 0 2048 in
  Alcotest.(check bool) "maximal set is large" true (max_n > 900);
  let maximal = set_of max_n in
  Alcotest.(check int) "maximal cardinality" max_n
    (Bgp.Community.Set.cardinal maximal);
  Alcotest.(check bool) "maximal set roundtrips" true
    (Bgp.Community.Set.equal maximal
       (decoded_communities (announce_with maximal)));
  match Wire.encode (announce_with (set_of (max_n + 1))) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized community set accepted"

(* ---------------- MRT ---------------- *)

let test_mrt_roundtrip () =
  let records =
    [
      {
        Mrt.timestamp = 12345;
        peer_as = Asn.make 4;
        prefix = victim;
        as_path = Bgp.As_path.of_list [ 4 ];
      };
      {
        Mrt.timestamp = 12345;
        peer_as = Asn.make 226;
        prefix = Prefix.of_string "10.0.0.0/8";
        as_path = Bgp.As_path.of_list [ 226; 7 ];
      };
    ]
  in
  let decoded = Mrt.decode_records (Mrt.encode_records records) in
  Alcotest.(check bool) "mrt roundtrip" true (decoded = records)

let test_mrt_table_roundtrip () =
  let table =
    [
      (victim, Asn.Set.of_list [ 4; 226 ]);
      (Prefix.of_string "10.0.0.0/8", Asn.Set.singleton 7);
    ]
  in
  let records = Mrt.records_of_table ~timestamp:0 table in
  Alcotest.(check int) "one record per (prefix, origin)" 3 (List.length records);
  let back = Mrt.table_of_records (Mrt.decode_records (Mrt.encode_records records)) in
  Alcotest.(check bool) "origin sets recovered" true
    (List.map (fun (p, s) -> (Prefix.to_string p, Asn.Set.elements s)) back
    = List.map
        (fun (p, s) -> (Prefix.to_string p, Asn.Set.elements s))
        (List.sort (fun (a, _) (b, _) -> Prefix.compare a b) table))

let test_mrt_through_measurement () =
  (* serialize one synthetic daily dump to MRT and re-extract the MOAS
     counts from the parsed bytes: the full paper pipeline over the wire *)
  let params =
    {
      Measurement.Synthetic_routeviews.default_params with
      Measurement.Synthetic_routeviews.universe_size = 400;
      initial_long_lived = 60;
      final_long_lived = 130;
      one_day_churn = 20;
      medium_churn = 10;
      event_1998_size = 110;
      event_2001_size = 90;
    }
  in
  let first_dump =
    Measurement.Synthetic_routeviews.fold_dumps params ~init:None
      ~f:(fun acc dump -> if acc = None then Some dump else acc)
  in
  match first_dump with
  | None -> Alcotest.fail "no dump"
  | Some dump ->
    let table = dump.Measurement.Synthetic_routeviews.table in
    let bytes =
      Mrt.encode_records (Mrt.records_of_table ~timestamp:0 table)
    in
    let reparsed = Mrt.table_of_records (Mrt.decode_records bytes) in
    let moas_count t =
      List.length (List.filter (fun (_, o) -> Asn.Set.cardinal o > 1) t)
    in
    Alcotest.(check int) "MOAS count survives the wire" (moas_count table)
      (moas_count reparsed);
    Alcotest.(check int) "prefix count survives" (List.length table)
      (List.length reparsed)

let test_mrt_rejects_garbage () =
  (match Mrt.decode_records (Bytes.make 7 'x') with
  | exception Mrt.Malformed _ -> ()
  | _ -> Alcotest.fail "garbage accepted")

let test_mrt_fold_streaming () =
  (* fold_records visits the same records, in file order, as
     decode_records builds — and can aggregate without the list *)
  let records =
    List.init 40 (fun i ->
        {
          Mrt.timestamp = 1000 + i;
          peer_as = Asn.make (1 + (i mod 5));
          prefix = Prefix.make (Ipv4.of_int (i * 65536)) 16;
          as_path = Bgp.As_path.of_list [ 1 + (i mod 5); 100 + i ];
        })
  in
  let bytes = Mrt.encode_records records in
  let folded =
    List.rev (Mrt.fold_records bytes ~init:[] ~f:(fun acc r -> r :: acc))
  in
  Alcotest.(check bool) "fold visits exactly the decoded records" true
    (folded = Mrt.decode_records bytes);
  let count = Mrt.fold_records bytes ~init:0 ~f:(fun n _ -> n + 1) in
  Alcotest.(check int) "count without building a list" 40 count;
  (* a truncated stream fails the same way *)
  match
    Mrt.fold_records (Bytes.sub bytes 0 (Bytes.length bytes - 1)) ~init:0
      ~f:(fun n _ -> n + 1)
  with
  | exception Mrt.Malformed _ -> ()
  | _ -> Alcotest.fail "truncated stream accepted"

let () =
  Alcotest.run "wire"
    [
      ( "bgp wire",
        [
          Alcotest.test_case "announce roundtrip" `Quick test_roundtrip_announce;
          Alcotest.test_case "withdraw roundtrip" `Quick test_roundtrip_withdraw;
          Alcotest.test_case "AS_SET roundtrip" `Quick test_roundtrip_as_set;
          Alcotest.test_case "prefix packing" `Quick test_prefix_packing;
          Alcotest.test_case "header layout" `Quick test_header_and_limits;
          Alcotest.test_case "garbage rejected" `Quick test_decode_rejects_garbage;
          Alcotest.test_case "truncation rejected" `Quick test_decode_rejects_truncation;
          Alcotest.test_case "update bridge" `Quick test_update_bridge;
          Alcotest.test_case "overhead in octets" `Quick test_update_size_overhead;
          Alcotest.test_case "4096-octet boundary" `Quick test_max_size_boundary;
          Alcotest.test_case "community empty/maximal sets" `Quick
            test_community_empty_and_maximal;
        ] );
      ( "mrt",
        [
          Alcotest.test_case "record roundtrip" `Quick test_mrt_roundtrip;
          Alcotest.test_case "table roundtrip" `Quick test_mrt_table_roundtrip;
          Alcotest.test_case "measurement through MRT" `Quick test_mrt_through_measurement;
          Alcotest.test_case "garbage rejected" `Quick test_mrt_rejects_garbage;
          Alcotest.test_case "streaming fold" `Quick test_mrt_fold_streaming;
        ] );
      ( "properties",
        [
          prop_wire_roundtrip;
          prop_encoded_size_exact;
          prop_boundary_exact;
          prop_community_roundtrip;
          prop_community_truncation_rejected;
        ] );
    ]
