(* Tests for lib/faults/chaos: the virtual clock, fault-plan validation,
   frame mutilation, the fault-injecting transport (end-to-end invariant
   and seed determinism) and degraded-mode entry via a failing source. *)

open Net
module M = Stream.Monitor
module Src = Stream.Source
module Q = Collect.Query
module Corr = Collect.Correlator
module Store = Collect.Store
module Proto = Serve.Proto
module Server = Serve.Server
module Client = Serve.Client
module Rng = Mutil.Rng

let p1 = Prefix.of_string "192.0.2.0/24"
let p2 = Prefix.of_string "198.51.100.0/24"

let entry ~prefix ~origins ~started =
  {
    Corr.x_prefix = prefix;
    x_seq = 1;
    x_started = started;
    x_ended = None;
    x_days = 1;
    x_max_origins = 2;
    x_origins = Asn.Set.of_list (List.map Asn.make origins);
    x_clean = true;
    x_seen_by = [ "vp00" ];
    x_first_detect = None;
    x_last_detect = None;
  }

let store () =
  Store.of_correlation
    {
      Corr.c_vantages = [ "vp00"; "vp01" ];
      c_entries =
        [
          entry ~prefix:p1 ~origins:[ 10; 20 ] ~started:100;
          entry ~prefix:p2 ~origins:[ 30; 40 ] ~started:50;
        ];
    }

(* ---------------- the virtual clock ---------------- *)

let test_clock () =
  let c = Chaos.Clock.create ~at:10.0 () in
  Alcotest.(check (float 0.)) "starts where asked" 10.0 (Chaos.Clock.now c);
  Chaos.Clock.advance c 2.5;
  Chaos.Clock.sleep c 1.5;
  Alcotest.(check (float 0.)) "advance and sleep accumulate" 14.0
    (Chaos.Clock.fn c ());
  Chaos.Clock.advance c (-5.0);
  Alcotest.(check (float 0.)) "never goes backwards" 14.0 (Chaos.Clock.now c)

(* ---------------- plans ---------------- *)

let test_plan_validation () =
  let server = Server.create ~store:(store ()) () in
  (match
     Chaos.transport
       ~rng:(Rng.create ~seed:1L)
       ~plan:{ Chaos.calm with Chaos.drop_request = 1.5 }
       server
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range probability accepted");
  (* every preset is valid and renders *)
  List.iter
    (fun (name, p) ->
      Alcotest.(check bool)
        (name ^ " renders") true
        (String.length (Chaos.plan_to_string p) > 0);
      ignore (Chaos.transport ~rng:(Rng.create ~seed:1L) ~plan:p server))
    Chaos.presets

(* ---------------- frame mutilation ---------------- *)

let mutilation_gen = QCheck2.Gen.(pair (int_range 0 10_000) (int_range 1 64))

let frame_of len = Bytes.init len (fun i -> Char.chr (i * 37 land 0xff))

let prop_corrupt_frame_differs =
  Testutil.qtest ~count:300 "corrupt_frame flips at least one bit"
    mutilation_gen
    (fun (seed, len) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      let frame = frame_of len in
      let m = Chaos.corrupt_frame rng frame in
      Bytes.length m = Bytes.length frame && not (Bytes.equal m frame))

let prop_truncate_frame_shorter =
  Testutil.qtest ~count:300 "truncate_frame cuts strictly short"
    mutilation_gen
    (fun (seed, len) ->
      let rng = Rng.create ~seed:(Int64.of_int seed) in
      Bytes.length (Chaos.truncate_frame rng (frame_of len)) < len)

(* ---------------- the fault-injecting transport ---------------- *)

let requests =
  [
    Proto.Ping;
    Proto.Query Q.empty;
    Proto.Count Q.empty;
    Proto.Query Q.(empty |> prefix p1);
    Proto.Stats;
  ]

(* drive [rounds] copies of the request mix through a hostile transport
   on a virtual clock; render every outcome *)
let run_chaos seed =
  let clock = Chaos.Clock.create () in
  let limits = { Server.default_limits with Server.deadline = 0.25 } in
  let server =
    Server.create ~limits ~now:(Chaos.Clock.fn clock) ~store:(store ()) ()
  in
  let transport =
    Chaos.transport ~clock ~rng:(Rng.create ~seed) ~plan:Chaos.hostile server
  in
  let client =
    Client.connect_via
      ~retry:{ Client.default_retry with Client.attempts = 4 }
      ~timeout:0.3
      ~rng:(Rng.create ~seed:(Int64.add seed 1L))
      ~clock:(Chaos.Clock.fn clock)
      ~sleep:(Chaos.Clock.sleep clock) transport
  in
  List.concat_map
    (fun _ ->
      List.map
        (fun req ->
          match Client.call client req with
          | resp -> Proto.render_response resp
          | exception Client.Failed (Client.Timed_out _) -> "failed: timeout"
          | exception Client.Failed (Client.Unreachable _) ->
            "failed: unreachable")
        requests)
    [ 1; 2; 3; 4; 5; 6 ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let test_chaos_transport_invariant () =
  (* every request is answered correctly, refused with Rejected, or fails
     cleanly — never a wrong answer, never an unexpected exception.
     (Stats answers vary with server-side shed/timeout counts, so only
     the stable requests are checked against the oracle.) *)
  let oracle_server = Server.create ~store:(store ()) () in
  let oracle_client = Client.connect oracle_server in
  let oracle =
    List.map
      (fun req -> Proto.render_response (Client.call oracle_client req))
      requests
  in
  List.iteri
    (fun i line ->
      let req = i mod List.length requests in
      let expected = List.nth oracle req in
      let is_stats = List.nth requests req = Proto.Stats in
      let ok =
        line = expected
        || line = "failed: timeout"
        || line = "failed: unreachable"
        || starts_with ~prefix:"rejected:" line
        || (is_stats && starts_with ~prefix:"stats:" line)
      in
      if not ok then
        Alcotest.failf "request %d: wrong answer %S (expected %S)" i line
          expected)
    (run_chaos 0xFEEDL)

let test_chaos_transport_deterministic () =
  Alcotest.(check (list string)) "same seed, same transcript"
    (run_chaos 0xFEEDL) (run_chaos 0xFEEDL)

(* ---------------- degraded mode via a failing source ---------------- *)

let ev ~time prefix action = { M.time; peer = Asn.make 99; prefix; action }

let ann ?list o =
  M.Announce { origin = Asn.make o; moas_list = Option.map Asn.Set.of_list list }

let batches =
  [
    {
      Src.time = 100;
      day = None;
      events = [| ev ~time:10 p1 (ann ~list:[ 10 ] 10) |];
    };
    { Src.time = 200; day = None; events = [| ev ~time:150 p1 (ann 20) |] };
    { Src.time = 300; day = None; events = [| ev ~time:250 p2 (ann 30) |] };
  ]

let test_failing_source_degrades () =
  let server = Server.create ~store:(store ()) () in
  let c = Client.connect server in
  (match Client.call c (Proto.Subscribe Q.empty) with
  | Proto.Subscribed _ -> ()
  | r -> Alcotest.failf "subscribe failed: %s" (Proto.render_response r));
  let n = Server.tail server (Chaos.failing_source ~after:2 batches) in
  Alcotest.(check int) "batches before the failure are kept" 2 n;
  (match Server.health server with
  | Server.Degraded reason ->
    Testutil.check_contains ~what:"degraded reason" reason
      "chaos: source failure"
  | Server.Serving -> Alcotest.fail "failing source left the server serving");
  Alcotest.(check int) "degraded tail is a no-op" 0
    (Server.tail server (Src.of_batches (Array.of_list batches)));
  (* read-only serving continues: queries, stats and already-queued
     alerts all still work *)
  (match Client.call c (Proto.Query Q.empty) with
  | Proto.Entries { entries; _ } ->
    Alcotest.(check int) "degraded query answers" 2 (List.length entries)
  | r -> Alcotest.failf "degraded query failed: %s" (Proto.render_response r));
  (match Client.call c Proto.Stats with
  | Proto.Stats_are s ->
    Alcotest.(check bool) "stats report degradation" true s.Proto.st_degraded
  | r -> Alcotest.failf "degraded stats failed: %s" (Proto.render_response r));
  Alcotest.(check bool) "pre-failure alerts were delivered" true
    (Client.poll c <> []);
  Client.close c

let test_failing_source_after_end () =
  (* a list shorter than [after] ends normally: no failure, still serving *)
  let server = Server.create ~store:(store ()) () in
  Alcotest.(check int) "whole list ingested" 3
    (Server.tail server (Chaos.failing_source ~after:10 batches));
  match Server.health server with
  | Server.Serving -> ()
  | Server.Degraded r -> Alcotest.failf "unexpected degradation: %s" r

let () =
  Alcotest.run "chaos"
    [
      ( "clock",
        [ Alcotest.test_case "virtual clock" `Quick test_clock ] );
      ( "plans",
        [
          Alcotest.test_case "validation and presets" `Quick
            test_plan_validation;
        ] );
      ( "mutilation",
        [ prop_corrupt_frame_differs; prop_truncate_frame_shorter ] );
      ( "transport",
        [
          Alcotest.test_case "answer-or-fail-cleanly invariant" `Quick
            test_chaos_transport_invariant;
          Alcotest.test_case "seeded determinism" `Quick
            test_chaos_transport_deterministic;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "failing source degrades the server" `Quick
            test_failing_source_degrades;
          Alcotest.test_case "source ending before the failure" `Quick
            test_failing_source_after_end;
        ] );
    ]
