(* Tests for Bgp.Rib, Bgp.Policy, Bgp.Route and Bgp.Update helpers. *)

open Net
module Rib = Bgp.Rib
module Policy = Bgp.Policy

let r = Testutil.route
let victim = Testutil.victim

let test_rib_set_and_get () =
  let rib = Rib.create () in
  Rib.set_in rib ~peer:(Asn.make 1) (r ~from:1 [ 1; 10 ]);
  Rib.set_in rib ~peer:(Asn.make 2) (r ~from:2 [ 2; 10 ]);
  Alcotest.(check int) "two candidates" 2 (List.length (Rib.routes_in rib victim));
  Alcotest.(check (list int)) "peer listing" [ 1; 2 ] (Rib.peers_with_route rib victim)

let test_rib_implicit_withdrawal () =
  let rib = Rib.create () in
  Rib.set_in rib ~peer:(Asn.make 1) (r ~from:1 [ 1; 10 ]);
  Rib.set_in rib ~peer:(Asn.make 1) (r ~from:1 [ 1; 2; 10 ]);
  match Rib.routes_in rib victim with
  | [ only ] ->
    Alcotest.(check int) "latest announcement replaces" 3
      (Bgp.As_path.length only.Bgp.Route.as_path)
  | l -> Alcotest.failf "expected 1 candidate, got %d" (List.length l)

let test_rib_withdraw () =
  let rib = Rib.create () in
  Rib.set_in rib ~peer:(Asn.make 1) (r ~from:1 [ 1; 10 ]);
  Rib.withdraw_in rib ~peer:(Asn.make 1) victim;
  Alcotest.(check int) "gone" 0 (List.length (Rib.routes_in rib victim));
  (* withdrawing twice is harmless *)
  Rib.withdraw_in rib ~peer:(Asn.make 1) victim;
  Alcotest.(check bool) "prefix fully forgotten" true
    (Prefix.Set.is_empty (Rib.prefixes_in rib))

let test_rib_best () =
  let rib = Rib.create () in
  Alcotest.(check bool) "empty loc-rib" true (Rib.best rib victim = None);
  let route = r ~from:1 [ 1; 10 ] in
  Rib.set_best rib route;
  Alcotest.check Testutil.route_testable "installed" route
    (Option.get (Rib.best rib victim));
  Rib.clear_best rib victim;
  Alcotest.(check bool) "cleared" true (Rib.best rib victim = None)

let test_rib_multiple_prefixes () =
  let rib = Rib.create () in
  let p2 = Prefix.of_string "10.0.0.0/8" in
  Rib.set_best rib (r ~from:1 [ 1; 10 ]);
  Rib.set_best rib (r ~prefix:p2 ~from:2 [ 2; 20 ]);
  Alcotest.(check int) "two loc-rib entries" 2 (List.length (Rib.best_bindings rib));
  (* the loc-rib trie supports longest-prefix forwarding *)
  let host = Ipv4.of_string "10.1.2.3" in
  match Net.Prefix_trie.longest_match host (Rib.loc_rib_trie rib) with
  | Some (q, _) -> Alcotest.check Testutil.prefix_testable "lpm" p2 q
  | None -> Alcotest.fail "expected a match"

(* regression for the O(1) loc-rib gauge: the maintained cardinality must
   track installs, same-prefix replacements, clears, double clears and a
   full reset exactly like counting the bindings would *)
let test_rib_loc_rib_size () =
  let rib = Rib.create () in
  let p2 = Prefix.of_string "10.0.0.0/8" in
  let sizes_agree label =
    Alcotest.(check int) label
      (List.length (Rib.best_bindings rib))
      (Rib.loc_rib_size rib)
  in
  Alcotest.(check int) "empty" 0 (Rib.loc_rib_size rib);
  Rib.set_best rib (r ~from:1 [ 1; 10 ]);
  Alcotest.(check int) "one entry" 1 (Rib.loc_rib_size rib);
  Rib.set_best rib (r ~from:2 [ 2; 10 ]);
  Alcotest.(check int) "replacement does not double-count" 1
    (Rib.loc_rib_size rib);
  Rib.set_best rib (r ~prefix:p2 ~from:2 [ 2; 20 ]);
  Alcotest.(check int) "second prefix" 2 (Rib.loc_rib_size rib);
  sizes_agree "matches bindings";
  Rib.clear_best rib victim;
  Alcotest.(check int) "cleared one" 1 (Rib.loc_rib_size rib);
  Rib.clear_best rib victim;
  Alcotest.(check int) "double clear is a no-op" 1 (Rib.loc_rib_size rib);
  sizes_agree "matches bindings after clears";
  Rib.clear rib;
  Alcotest.(check int) "reset" 0 (Rib.loc_rib_size rib)

let test_rib_fold_matches_routes_in () =
  let rib = Rib.create () in
  Rib.set_in rib ~peer:(Asn.make 3) (r ~from:3 [ 3; 10 ]);
  Rib.set_in rib ~peer:(Asn.make 1) (r ~from:1 [ 1; 10 ]);
  Rib.set_in rib ~peer:(Asn.make 2) (r ~from:2 [ 2; 10 ]);
  let folded =
    List.rev (Rib.fold_routes_in rib victim (fun acc r -> r :: acc) [])
  in
  Alcotest.(check (list Testutil.route_testable))
    "fold visits the same routes in the same order" (Rib.routes_in rib victim)
    folded

let test_rib_flush_peer () =
  let rib = Rib.create () in
  let p2 = Prefix.of_string "10.0.0.0/8" in
  let p3 = Prefix.of_string "172.16.0.0/12" in
  Rib.set_in rib ~peer:(Asn.make 1) (r ~from:1 [ 1; 10 ]);
  Rib.set_in rib ~peer:(Asn.make 1) (r ~prefix:p2 ~from:1 [ 1; 20 ]);
  Rib.set_in rib ~peer:(Asn.make 2) (r ~prefix:p3 ~from:2 [ 2; 30 ]);
  (* re-announcing then withdrawing must leave the index consistent *)
  Rib.set_in rib ~peer:(Asn.make 1) (r ~prefix:p2 ~from:1 [ 1; 2; 20 ]);
  let affected = Rib.flush_peer rib ~peer:(Asn.make 1) in
  Alcotest.(check (list Testutil.prefix_testable))
    "affected prefixes, ascending" [ p2; victim ] affected;
  Alcotest.(check int) "peer 1 routes gone" 0
    (List.length (Rib.routes_in rib victim) + List.length (Rib.routes_in rib p2));
  Alcotest.(check int) "peer 2 untouched" 1 (List.length (Rib.routes_in rib p3));
  Alcotest.(check (list Testutil.prefix_testable))
    "second flush finds nothing" [] (Rib.flush_peer rib ~peer:(Asn.make 1));
  Rib.set_in rib ~peer:(Asn.make 2) (r ~prefix:p2 ~from:2 [ 2; 20 ]);
  Rib.withdraw_in rib ~peer:(Asn.make 2) p2;
  Alcotest.(check (list Testutil.prefix_testable))
    "withdrawn routes are not re-flushed" [ p3 ]
    (Rib.flush_peer rib ~peer:(Asn.make 2))

let test_policy_default () =
  let route = r ~from:1 [ 1; 10 ] in
  Alcotest.(check (option Testutil.route_testable)) "import passes"
    (Some route)
    (Policy.default.Policy.import ~peer:(Asn.make 1) route);
  Alcotest.(check (option Testutil.route_testable)) "export passes"
    (Some route)
    (Policy.default.Policy.export ~peer:(Asn.make 1) route)

let test_policy_dropper () =
  let communities = Testutil.moas_communities [ 10; 20 ] in
  let route = r ~communities ~from:1 [ 1; 10 ] in
  let dropper = Policy.drop_communities_on_export Policy.default in
  (match dropper.Policy.export ~peer:(Asn.make 2) route with
  | Some exported ->
    Alcotest.(check bool) "communities stripped" true
      (Bgp.Community.Set.is_empty exported.Bgp.Route.communities)
  | None -> Alcotest.fail "dropper must not filter");
  (* import side untouched *)
  match dropper.Policy.import ~peer:(Asn.make 2) route with
  | Some imported ->
    Alcotest.(check bool) "import keeps communities" false
      (Bgp.Community.Set.is_empty imported.Bgp.Route.communities)
  | None -> Alcotest.fail "import must pass"

let test_policy_reject_when () =
  let p =
    Policy.reject_import_when
      (fun ~peer:_ route -> Bgp.As_path.length route.Bgp.Route.as_path > 2)
      Policy.default
  in
  Alcotest.(check bool) "short accepted" true
    (p.Policy.import ~peer:(Asn.make 1) (r ~from:1 [ 1; 10 ]) <> None);
  Alcotest.(check bool) "long rejected" true
    (p.Policy.import ~peer:(Asn.make 1) (r ~from:1 [ 1; 2; 3; 10 ]) = None)

let test_policy_compose_export () =
  let p =
    Policy.compose_export
      (fun ~peer:_ route -> Some { route with Bgp.Route.local_pref = 7 })
      (Policy.drop_communities_on_export Policy.default)
  in
  let communities = Testutil.moas_communities [ 10 ] in
  match p.Policy.export ~peer:(Asn.make 1) (r ~communities ~from:1 [ 1; 10 ]) with
  | Some e ->
    Alcotest.(check int) "second stage applied" 7 e.Bgp.Route.local_pref;
    Alcotest.(check bool) "first stage applied" true
      (Bgp.Community.Set.is_empty e.Bgp.Route.communities)
  | None -> Alcotest.fail "export chain must pass"

let test_route_helpers () =
  let self = Asn.make 4 in
  let originated = Bgp.Route.originate ~self victim in
  Alcotest.(check int) "originated path empty" 0
    (Bgp.As_path.length originated.Bgp.Route.as_path);
  Alcotest.(check int) "origin of originated route is self" 4
    (Bgp.Route.origin_as ~self originated);
  let advertised = Bgp.Route.advertised_by self originated in
  Alcotest.(check int) "advertised origin" 4
    (Bgp.Route.origin_as ~self:(Asn.make 1) advertised);
  let received = Bgp.Route.received ~from:(Asn.make 9) advertised in
  Alcotest.(check int) "learned_from stamped" 9
    (Asn.to_int received.Bgp.Route.learned_from)

let test_update_helpers () =
  let u = Bgp.Update.announce ~sender:(Asn.make 1) (r ~from:1 [ 1; 10 ]) in
  Alcotest.check Testutil.prefix_testable "announce prefix" victim
    (Bgp.Update.prefix u);
  let w = Bgp.Update.withdraw ~sender:(Asn.make 1) victim in
  Alcotest.check Testutil.prefix_testable "withdraw prefix" victim
    (Bgp.Update.prefix w)

let () =
  Alcotest.run "rib_policy"
    [
      ( "rib",
        [
          Alcotest.test_case "set/get" `Quick test_rib_set_and_get;
          Alcotest.test_case "implicit withdrawal" `Quick test_rib_implicit_withdrawal;
          Alcotest.test_case "withdraw" `Quick test_rib_withdraw;
          Alcotest.test_case "loc-rib" `Quick test_rib_best;
          Alcotest.test_case "multiple prefixes + lpm" `Quick test_rib_multiple_prefixes;
          Alcotest.test_case "loc-rib cardinality" `Quick test_rib_loc_rib_size;
          Alcotest.test_case "fold matches routes_in" `Quick
            test_rib_fold_matches_routes_in;
          Alcotest.test_case "flush peer" `Quick test_rib_flush_peer;
        ] );
      ( "policy",
        [
          Alcotest.test_case "default" `Quick test_policy_default;
          Alcotest.test_case "community dropper" `Quick test_policy_dropper;
          Alcotest.test_case "reject predicate" `Quick test_policy_reject_when;
          Alcotest.test_case "export composition" `Quick test_policy_compose_export;
        ] );
      ( "route/update",
        [
          Alcotest.test_case "route helpers" `Quick test_route_helpers;
          Alcotest.test_case "update helpers" `Quick test_update_helpers;
        ] );
    ]
