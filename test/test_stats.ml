(* Tests for Mutil.Stats. *)

module Stats = Mutil.Stats

let feq ?(eps = 1e-9) name expected actual =
  if abs_float (expected -. actual) > eps then
    Alcotest.failf "%s: expected %f, got %f" name expected actual

let test_mean () =
  feq "empty" 0.0 (Stats.mean []);
  feq "single" 5.0 (Stats.mean [ 5.0 ]);
  feq "several" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  feq "array" 2.0 (Stats.mean_array [| 1.0; 2.0; 3.0 |])

let test_variance_stddev () =
  feq "variance of constant" 0.0 (Stats.variance [ 4.0; 4.0; 4.0 ]);
  (* sample variance of 1..5 is 2.5 *)
  feq "variance 1..5" 2.5 (Stats.variance [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  feq "stddev 1..5" (sqrt 2.5) (Stats.stddev [ 1.0; 2.0; 3.0; 4.0; 5.0 ]);
  feq "variance short list" 0.0 (Stats.variance [ 1.0 ])

let test_stderr () =
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  feq "stderr of n=4" (Stats.stddev xs /. 2.0) (Stats.stderr_of_mean xs);
  feq "stderr single" 0.0 (Stats.stderr_of_mean [ 3.0 ])

let test_median () =
  feq "odd length" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ]);
  feq "even length" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  feq "empty" 0.0 (Stats.median [])

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  feq "p0" 1.0 (Stats.percentile 0.0 xs);
  feq "p50" 3.0 (Stats.percentile 50.0 xs);
  feq "p100" 5.0 (Stats.percentile 100.0 xs);
  feq "p25 interpolates" 2.0 (Stats.percentile 25.0 xs);
  feq "p10 interpolates" 1.4 (Stats.percentile 10.0 xs)

let test_min_max () =
  let lo, hi = Stats.min_max [ 3.0; -1.0; 7.0 ] in
  feq "min" (-1.0) lo;
  feq "max" 7.0 hi;
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.min_max: empty list") (fun () ->
      ignore (Stats.min_max []))

let test_histogram () =
  let h = Stats.histogram ~edges:[| 0.0; 1.0; 2.0; 3.0 |] [ 0.5; 1.5; 1.9; 2.5; 3.0 ] in
  Alcotest.(check (array int)) "bucket counts" [| 1; 2; 2 |] h.Stats.counts

let test_histogram_clamps () =
  let h = Stats.histogram ~edges:[| 0.0; 1.0; 2.0 |] [ -5.0; 10.0 ] in
  Alcotest.(check (array int)) "out-of-range clamps" [| 1; 1 |] h.Stats.counts

let test_histogram_bad_edges () =
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Stats.histogram: edges must be strictly increasing")
    (fun () -> ignore (Stats.histogram ~edges:[| 1.0; 1.0 |] []))

let test_int_histogram () =
  let h = Stats.int_histogram ~max_value:3 [ 0; 1; 1; 2; 7; -1 ] in
  Alcotest.(check (array int)) "counts with clamping" [| 2; 2; 1; 1 |] h

(* ---------------- binary-classification metrics ---------------- *)

let test_confusion () =
  let c =
    Stats.confusion
      [
        (true, true); (true, true); (false, true);
        (false, false); (false, false); (false, false);
        (true, false);
      ]
  in
  Alcotest.(check int) "tp" 2 c.Stats.tp;
  Alcotest.(check int) "fp" 1 c.Stats.fp;
  Alcotest.(check int) "tn" 3 c.Stats.tn;
  Alcotest.(check int) "fn" 1 c.Stats.fn;
  feq "precision" (2. /. 3.) (Stats.precision c);
  feq "recall" (2. /. 3.) (Stats.recall c);
  feq "f1" (2. /. 3.) (Stats.f1 c);
  feq "accuracy" (5. /. 7.) (Stats.accuracy c);
  feq "fallout" 0.25 (Stats.fallout c);
  feq "miss rate" (1. /. 3.) (Stats.miss_rate c)

let test_confusion_empty () =
  let c = Stats.no_confusion in
  feq "precision of nothing" 1.0 (Stats.precision c);
  feq "recall of nothing" 1.0 (Stats.recall c);
  feq "f1 of nothing" 1.0 (Stats.f1 c);
  feq "accuracy of nothing" 1.0 (Stats.accuracy c);
  feq "fallout of nothing" 0.0 (Stats.fallout c);
  feq "miss rate of nothing" 0.0 (Stats.miss_rate c)

let test_auc () =
  feq "perfect ranking" 1.0 (Stats.auc [ (0.9, true); (0.8, true); (0.1, false) ]);
  feq "inverted ranking" 0.0 (Stats.auc [ (0.1, true); (0.9, false) ]);
  feq "tied scores count half" 0.5 (Stats.auc [ (0.5, true); (0.5, false) ]);
  (* one concordant pair, one tie: (1 + 0.5) / 2 *)
  feq "mixed ties" 0.75
    (Stats.auc [ (0.5, true); (0.5, false); (0.9, true) ]);
  feq "single class degenerates to chance" 0.5 (Stats.auc [ (0.4, true) ]);
  feq "empty degenerates to chance" 0.5 (Stats.auc [])

let outcome_gen =
  QCheck2.Gen.(list_size (int_range 0 60) (pair bool bool))

let prop_confusion_rates_bounded =
  Testutil.qtest "precision/recall/f1/accuracy stay in [0, 1]" outcome_gen
    (fun pairs ->
      let c = Stats.confusion pairs in
      List.for_all
        (fun v -> v >= 0.0 && v <= 1.0)
        [
          Stats.precision c; Stats.recall c; Stats.f1 c; Stats.accuracy c;
          Stats.fallout c; Stats.miss_rate c;
        ]
      && c.Stats.tp + c.Stats.fp + c.Stats.tn + c.Stats.fn = List.length pairs)

let prop_auc_bounded =
  Testutil.qtest "AUC stays in [0, 1]"
    QCheck2.Gen.(
      list_size (int_range 0 40) (pair (float_range 0.0 1.0) bool))
    (fun scored ->
      let a = Stats.auc scored in
      a >= 0.0 && a <= 1.0)

let prop_mean_bounds =
  Testutil.qtest "mean lies within min..max"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Stats.mean xs in
      let lo, hi = Stats.min_max xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_median_bounds =
  Testutil.qtest "median lies within min..max"
    QCheck2.Gen.(list_size (int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Stats.median xs in
      let lo, hi = Stats.min_max xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_histogram_total =
  Testutil.qtest "histogram counts partition the sample"
    QCheck2.Gen.(list_size (int_range 0 100) (float_range (-10.) 10.))
    (fun xs ->
      let h = Stats.histogram ~edges:[| -5.0; 0.0; 5.0 |] xs in
      Array.fold_left ( + ) 0 h.Stats.counts = List.length xs)

let () =
  Alcotest.run "stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance/stddev" `Quick test_variance_stddev;
          Alcotest.test_case "stderr" `Quick test_stderr;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "min_max" `Quick test_min_max;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "basic buckets" `Quick test_histogram;
          Alcotest.test_case "clamping" `Quick test_histogram_clamps;
          Alcotest.test_case "bad edges" `Quick test_histogram_bad_edges;
          Alcotest.test_case "int histogram" `Quick test_int_histogram;
        ] );
      ( "classification",
        [
          Alcotest.test_case "confusion and derived rates" `Quick test_confusion;
          Alcotest.test_case "empty confusion conventions" `Quick
            test_confusion_empty;
          Alcotest.test_case "rank AUC" `Quick test_auc;
        ] );
      ( "properties",
        [
          prop_mean_bounds;
          prop_median_bounds;
          prop_histogram_total;
          prop_confusion_rates_bounded;
          prop_auc_bounded;
        ] );
    ]
