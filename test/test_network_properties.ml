(* Randomized system-level properties of the BGP network and the MOAS
   mechanism over arbitrary connected topologies and multi-prefix
   workloads. *)

open Net
module Network = Bgp.Network
module G = Topology.As_graph

let victim = Testutil.victim

(* random connected graph: a random spanning tree plus extra edges *)
let connected_graph_gen =
  QCheck2.Gen.(
    let* n = int_range 3 20 in
    let* parents = list_repeat (n - 1) (int_range 0 1000) in
    let* extras = list_size (int_range 0 15) (pair (int_range 0 1000) (int_range 0 1000)) in
    let tree =
      List.mapi (fun i p -> (i + 2, 1 + (p mod (i + 1)))) parents
    in
    let extra_edges =
      List.filter_map
        (fun (a, b) ->
          let a = 1 + (a mod n) and b = 1 + (b mod n) in
          if a = b then None else Some (a, b))
        extras
    in
    return (G.of_edges (tree @ extra_edges)))

let prop_convergence =
  Testutil.qtest ~count:60 "BGP converges on random connected graphs"
    connected_graph_gen
    (fun g ->
      let net = Network.make g in
      Network.originate net (Asn.Set.min_elt (G.nodes g)) victim;
      Network.run net = Sim.Engine.Quiescent)

let prop_full_reachability =
  Testutil.qtest ~count:60 "every AS of a connected graph learns the route"
    connected_graph_gen
    (fun g ->
      let net = Network.make g in
      let origin = Asn.Set.min_elt (G.nodes g) in
      Network.originate net origin victim;
      ignore (Network.run net);
      G.fold_nodes
        (fun asn ok -> ok && Network.best_route net asn victim <> None)
        g true)

let prop_shortest_paths =
  Testutil.qtest ~count:60 "selected paths are BFS-shortest"
    connected_graph_gen
    (fun g ->
      let net = Network.make g in
      let origin = Asn.Set.min_elt (G.nodes g) in
      Network.originate net origin victim;
      ignore (Network.run net);
      let dist = Topology.Algorithms.bfs_distances g origin in
      G.fold_nodes
        (fun asn ok ->
          ok
          &&
          match Network.best_route net asn victim with
          | Some route ->
            Bgp.As_path.length route.Bgp.Route.as_path = Asn.Map.find asn dist
          | None -> false)
        g true)

let prop_selected_paths_loop_free =
  Testutil.qtest ~count:60 "no selected AS path contains the selector"
    connected_graph_gen
    (fun g ->
      let net = Network.make g in
      Network.originate net (Asn.Set.min_elt (G.nodes g)) victim;
      ignore (Network.run net);
      G.fold_nodes
        (fun asn ok ->
          ok
          &&
          match Network.best_route net asn victim with
          | Some route -> not (Bgp.As_path.contains route.Bgp.Route.as_path asn)
          | None -> true)
        g true)

let prop_withdrawal_clears_everything =
  Testutil.qtest ~count:40 "withdrawal leaves no stale route anywhere"
    connected_graph_gen
    (fun g ->
      let net = Network.make g in
      let origin = Asn.Set.min_elt (G.nodes g) in
      Network.originate ~at:0.0 net origin victim;
      Network.withdraw ~at:100.0 net origin victim;
      ignore (Network.run net);
      G.fold_nodes
        (fun asn ok -> ok && Network.best_route net asn victim = None)
        g true)

let prop_detection_protects_random_graphs =
  Testutil.qtest ~count:40
    "full MOAS deployment never does worse than plain BGP (random graphs)"
    QCheck2.Gen.(pair connected_graph_gen (int_range 0 1000))
    (fun (g, pick) ->
      let nodes = Array.of_list (Asn.Set.elements (G.nodes g)) in
      let origin = nodes.(pick mod Array.length nodes) in
      let attacker = nodes.((pick + 1) mod Array.length nodes) in
      QCheck2.assume (not (Asn.equal origin attacker));
      let adoption ~deployment =
        let scenario =
          Attack.Scenario.make ~deployment ~graph:g ~victim_prefix:victim
            ~legit_origins:[ origin ]
            ~attackers:[ Attack.Attacker.make attacker ]
            ()
        in
        (Testutil.run_scenario scenario).Attack.Scenario.fraction_adopting
      in
      adoption ~deployment:Moas.Deployment.Full
      <= adoption ~deployment:Moas.Deployment.Disabled +. 1e-9)

(* ---------------- multi-prefix workload ---------------- *)

let test_full_table_with_selective_hijacks () =
  (* a routing table of 60 prefixes from different stub origins; three of
     them are hijacked; full deployment must contain exactly those three
     conflicts without disturbing the other 57 prefixes *)
  let t = Topology.Paper_topologies.topology_46 () in
  let graph = t.Topology.Paper_topologies.graph in
  let stubs = Array.of_list (Asn.Set.elements t.Topology.Paper_topologies.stub) in
  let rng = Mutil.Rng.of_int 123 in
  let prefixes =
    List.init 60 (fun i ->
        Prefix.make (Ipv4.of_octets 10 (i / 8) (i mod 8 * 32) 0) 22)
  in
  let assignments =
    List.map (fun p -> (p, stubs.(Mutil.Rng.int rng (Array.length stubs)))) prefixes
  in
  let hijacked = List.filteri (fun i _ -> i mod 20 = 3) assignments in
  let attacker =
    Asn.Set.max_elt t.Topology.Paper_topologies.transit
  in
  let oracle = Moas.Origin_verification.create () in
  List.iter
    (fun (p, origin) ->
      Moas.Origin_verification.register oracle p (Asn.Set.singleton origin))
    assignments;
  let detectors = Hashtbl.create 64 in
  let validator_of asn =
    if Asn.equal asn attacker then None
    else begin
      let d = Moas.Detector.create ~backend:(Moas.Detector.Oracle oracle) ~self:asn () in
      Hashtbl.replace detectors asn d;
      Some (Moas.Detector.validator d)
    end
  in
  let net = Network.make ~config:Network.Config.(default |> with_validator_of validator_of) graph in
  List.iter (fun (p, origin) -> Network.originate ~at:0.0 net origin p) assignments;
  List.iter (fun (p, _) -> Network.originate ~at:50.0 net attacker p) hijacked;
  Alcotest.(check bool) "converged" true (Network.run net = Sim.Engine.Quiescent);
  (* every non-hijacked prefix reaches everyone from its true origin *)
  let hijacked_set = List.map fst hijacked in
  List.iter
    (fun (p, origin) ->
      if not (List.exists (Prefix.equal p) hijacked_set) then
        G.fold_nodes
          (fun asn () ->
            match Network.best_origin net asn p with
            | Some o ->
              if not (Asn.equal o origin) then
                Alcotest.failf "prefix %s wrong origin at AS%d"
                  (Prefix.to_string p) asn
            | None ->
              Alcotest.failf "prefix %s missing at AS%d" (Prefix.to_string p) asn)
          graph ())
    assignments;
  (* the hijacked prefixes are protected at every non-attacker AS *)
  List.iter
    (fun (p, _) ->
      G.fold_nodes
        (fun asn () ->
          if not (Asn.equal asn attacker) then
            match Network.best_origin net asn p with
            | Some o when Asn.equal o attacker ->
              Alcotest.failf "hijack of %s adopted at AS%d" (Prefix.to_string p) asn
            | _ -> ())
        graph ())
    hijacked;
  (* alarms concern exactly the hijacked prefixes *)
  let alarmed_prefixes =
    Hashtbl.fold
      (fun _ d acc ->
        List.fold_left
          (fun acc alarm -> Prefix.Set.add alarm.Moas.Alarm.prefix acc)
          acc (Moas.Detector.alarms d))
      detectors Prefix.Set.empty
  in
  Alcotest.(check int) "alarms only on the hijacked prefixes" 3
    (Prefix.Set.cardinal alarmed_prefixes);
  List.iter
    (fun (p, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "alarm covers %s" (Prefix.to_string p))
        true
        (Prefix.Set.mem p alarmed_prefixes))
    hijacked

let () =
  Alcotest.run "network_properties"
    [
      ( "random graphs",
        [
          prop_convergence;
          prop_full_reachability;
          prop_shortest_paths;
          prop_selected_paths_loop_free;
          prop_withdrawal_clears_everything;
          prop_detection_protects_random_graphs;
        ] );
      ( "multi-prefix",
        [
          Alcotest.test_case "full table, selective hijacks" `Quick
            test_full_table_with_selective_hijacks;
        ] );
    ]
