(* Tests for Bgp.Router (unit level, with a manual transport) and
   Bgp.Network (integration over small topologies). *)

open Net
module Router = Bgp.Router
module Network = Bgp.Network
module Update = Bgp.Update

let victim = Testutil.victim

(* a synchronous loopback transport capturing everything a router sends *)
let wire router =
  let sent = ref [] in
  Router.set_transport router
    ~send:(fun ~peer update -> sent := (peer, update) :: !sent)
    ~schedule:(fun ~delay:_ _ -> ());
  fun () ->
    let out = List.rev !sent in
    sent := [];
    out

let announce ~from path ?(communities = Bgp.Community.Set.empty) () =
  Update.announce ~sender:(Asn.make from)
    (Testutil.route ~communities ~from path)

let test_originate_advertises_to_all_peers () =
  let router = Router.create (Asn.make 1) in
  Router.add_peer router (Asn.make 2);
  Router.add_peer router (Asn.make 3);
  let drain = wire router in
  Router.originate router ~now:0.0 (Bgp.Route.originate ~self:(Asn.make 1) victim);
  let sent = drain () in
  Alcotest.(check int) "one update per peer" 2 (List.length sent);
  List.iter
    (fun (_, u) ->
      match u.Update.payload with
      | Update.Announce route ->
        Alcotest.(check int) "origin prepended" 1
          (Bgp.Route.origin_as ~self:(Asn.make 99) route |> Asn.to_int)
      | Update.Withdraw _ -> Alcotest.fail "expected announce")
    sent

let test_loop_detection () =
  let router = Router.create (Asn.make 7) in
  Router.add_peer router (Asn.make 2);
  let drain = wire router in
  (* a path already containing AS 7 must be discarded *)
  Router.handle_update router ~now:1.0 (announce ~from:2 [ 2; 7; 10 ] ());
  ignore (drain ());
  Alcotest.(check bool) "looping route not installed" true
    (Router.best router victim = None)

let test_loop_detection_implicit_withdraw () =
  let router = Router.create (Asn.make 7) in
  Router.add_peer router (Asn.make 2);
  (* peer 3 heard the first route and must hear the withdrawal *)
  Router.add_peer router (Asn.make 3);
  let drain = wire router in
  Router.handle_update router ~now:1.0 (announce ~from:2 [ 2; 10 ] ());
  Alcotest.(check bool) "first route installed" true
    (Router.best router victim <> None);
  ignore (drain ());
  (* the same peer now sends a looping path: the old route must go away *)
  Router.handle_update router ~now:2.0 (announce ~from:2 [ 2; 7; 10 ] ());
  Alcotest.(check bool) "looping replacement withdraws" true
    (Router.best router victim = None);
  (* and the loss is propagated as an explicit withdrawal *)
  let sent = drain () in
  Alcotest.(check bool) "withdraw emitted" true
    (List.exists
       (fun (_, u) ->
         match u.Update.payload with
         | Update.Withdraw _ -> true
         | Update.Announce _ -> false)
       sent)

let test_split_horizon () =
  let router = Router.create (Asn.make 1) in
  Router.add_peer router (Asn.make 2);
  Router.add_peer router (Asn.make 3);
  let drain = wire router in
  Router.handle_update router ~now:1.0 (announce ~from:2 [ 2; 10 ] ());
  let sent = drain () in
  let targets = List.map (fun (peer, _) -> Asn.to_int peer) sent in
  Alcotest.(check (list int)) "only the other peer hears it" [ 3 ] targets

let test_no_duplicate_advertisements () =
  let router = Router.create (Asn.make 1) in
  Router.add_peer router (Asn.make 2);
  Router.add_peer router (Asn.make 3);
  let drain = wire router in
  Router.handle_update router ~now:1.0 (announce ~from:2 [ 2; 10 ] ());
  ignore (drain ());
  (* the identical announcement again: nothing new to say *)
  Router.handle_update router ~now:2.0 (announce ~from:2 [ 2; 10 ] ());
  Alcotest.(check int) "duplicate suppressed" 0 (List.length (drain ()))

let test_better_route_replaces () =
  let router = Router.create (Asn.make 1) in
  Router.add_peer router (Asn.make 2);
  Router.add_peer router (Asn.make 3);
  Router.add_peer router (Asn.make 4);
  let drain = wire router in
  Router.handle_update router ~now:1.0 (announce ~from:2 [ 2; 9; 10 ] ());
  ignore (drain ());
  Router.handle_update router ~now:2.0 (announce ~from:3 [ 3; 10 ] ());
  (match Router.best router victim with
  | Some best ->
    Alcotest.(check int) "shorter route installed" 2
      (Bgp.As_path.length best.Bgp.Route.as_path)
  | None -> Alcotest.fail "route expected");
  let sent = drain () in
  (* the new best is announced to 2 and 4; peer 3, which now supplies the
     best route, gets a withdrawal of the previously advertised one *)
  let kind u =
    match u.Update.payload with
    | Update.Announce _ -> "announce"
    | Update.Withdraw _ -> "withdraw"
  in
  let tagged =
    List.map (fun (peer, u) -> (Asn.to_int peer, kind u)) sent
    |> List.sort compare
  in
  Alcotest.(check (list (pair int string)))
    "re-advertised around split horizon"
    [ (2, "announce"); (3, "withdraw"); (4, "announce") ]
    tagged

let test_withdraw_falls_back () =
  let router = Router.create (Asn.make 1) in
  Router.add_peer router (Asn.make 2);
  Router.add_peer router (Asn.make 3);
  let drain = wire router in
  Router.handle_update router ~now:1.0 (announce ~from:2 [ 2; 10 ] ());
  Router.handle_update router ~now:2.0 (announce ~from:3 [ 3; 8; 10 ] ());
  ignore (drain ());
  Router.handle_update router ~now:3.0
    (Update.withdraw ~sender:(Asn.make 2) victim);
  match Router.best router victim with
  | Some best ->
    Alcotest.(check int) "fell back to the longer route" 3
      (Bgp.As_path.length best.Bgp.Route.as_path)
  | None -> Alcotest.fail "backup route expected"

let test_validator_filters () =
  let validator ~now:_ ~prefix:_ routes =
    List.filter
      (fun route -> Bgp.Route.origin_as ~self:(Asn.make 1) route <> Asn.make 666)
      routes
  in
  let router = Router.create ~validator (Asn.make 1) in
  Router.add_peer router (Asn.make 2);
  let (_ : unit -> (Net.Asn.t * Update.t) list) = wire router in
  Router.handle_update router ~now:1.0 (announce ~from:2 [ 2; 666 ] ());
  Alcotest.(check bool) "filtered origin never selected" true
    (Router.best router victim = None);
  Router.handle_update router ~now:2.0 (announce ~from:2 [ 2; 10 ] ());
  Alcotest.(check bool) "clean origin selected" true
    (Router.best router victim <> None)

let test_counters () =
  let router = Router.create (Asn.make 1) in
  Router.add_peer router (Asn.make 2);
  let (_ : unit -> (Net.Asn.t * Update.t) list) = wire router in
  Router.handle_update router ~now:1.0 (announce ~from:2 [ 2; 10 ] ());
  Alcotest.(check int) "received counted" 1 (Router.updates_received router);
  Alcotest.(check bool) "sent counted" true (Router.updates_sent router >= 0)

(* ---------------- network integration ---------------- *)

(* Network.make with an explicit Config (the former Network.create
   labelled-argument wrapper was removed after its deprecation release). *)
let test_configured_make () =
  let net =
    Network.make
      ~config:
        Network.Config.(
          default
          |> with_mrai_of (fun _ -> 0.0)
          |> with_link_delay (fun _ _ -> 1.0))
      (Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4) ])
  in
  Network.originate net 1 victim;
  Alcotest.(check bool) "quiescent" true (Network.run net = Sim.Engine.Quiescent);
  List.iter
    (fun asn ->
      match Network.best_route net asn victim with
      | Some route ->
        Alcotest.(check int)
          (Printf.sprintf "AS%d path length = distance" asn)
          (asn - 1)
          (Bgp.As_path.length route.Bgp.Route.as_path)
      | None -> Alcotest.failf "AS%d missing route" asn)
    [ 1; 2; 3; 4 ]

let test_network_line_convergence () =
  let g = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4) ] in
  let net = Network.make g in
  Network.originate net 1 victim;
  Alcotest.(check bool) "quiescent" true (Network.run net = Sim.Engine.Quiescent);
  List.iter
    (fun asn ->
      match Network.best_route net asn victim with
      | Some route ->
        Alcotest.(check int)
          (Printf.sprintf "AS%d path length = distance" asn)
          (asn - 1)
          (Bgp.As_path.length route.Bgp.Route.as_path)
      | None -> Alcotest.failf "AS%d missing route" asn)
    [ 1; 2; 3; 4 ]

let test_network_ring_prefers_short_side () =
  (* ring of 6: node 4 is 3 hops either way from 1; others take the near side *)
  let g =
    Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4); (4, 5); (5, 6); (6, 1) ]
  in
  let net = Network.make g in
  Network.originate net 1 victim;
  ignore (Network.run net);
  let len asn =
    Bgp.As_path.length (Option.get (Network.best_route net asn victim)).Bgp.Route.as_path
  in
  Alcotest.(check int) "AS2 one hop" 1 (len 2);
  Alcotest.(check int) "AS6 one hop" 1 (len 6);
  Alcotest.(check int) "AS3 two hops" 2 (len 3);
  Alcotest.(check int) "AS4 three hops" 3 (len 4)

let test_network_withdraw_ripples () =
  let g = Topology.As_graph.of_edges [ (1, 2); (2, 3) ] in
  let net = Network.make g in
  Network.originate ~at:0.0 net 1 victim;
  Network.withdraw ~at:50.0 net 1 victim;
  ignore (Network.run net);
  List.iter
    (fun asn ->
      Alcotest.(check bool)
        (Printf.sprintf "AS%d has no route after withdrawal" asn)
        true
        (Network.best_route net asn victim = None))
    [ 1; 2; 3 ]

let test_withdraw_origin_reaches_every_as () =
  (* a withdrawal must ripple to every AS of a real topology, not just a
     short line: the 25-AS paper topology ends route-free everywhere *)
  let t = Topology.Paper_topologies.topology_25 () in
  let net = Network.make t.Topology.Paper_topologies.graph in
  let origin = Asn.Set.min_elt t.Topology.Paper_topologies.stub in
  Network.originate ~at:0.0 net origin victim;
  Network.withdraw ~at:50.0 net origin victim;
  Alcotest.(check bool) "converged" true (Network.run net = Sim.Engine.Quiescent);
  Topology.As_graph.fold_nodes
    (fun asn () ->
      Alcotest.(check bool)
        (Printf.sprintf "AS%d route gone" asn)
        true
        (Network.best_route net asn victim = None))
    t.Topology.Paper_topologies.graph ()

let test_withdraw_origin_reselects_second_origin () =
  (* anycast: when one of two origins withdraws, every AS fails over to
     the surviving origin instead of losing the prefix *)
  let g = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4); (4, 5) ] in
  let net = Network.make g in
  Network.originate ~at:0.0 net 1 victim;
  Network.originate ~at:0.0 net 5 victim;
  Network.withdraw ~at:50.0 net 1 victim;
  ignore (Network.run net);
  List.iter
    (fun asn ->
      Alcotest.(check (option int))
        (Printf.sprintf "AS%d fails over to the surviving origin" asn)
        (Some 5)
        (Network.best_origin net asn victim))
    [ 1; 2; 3; 4; 5 ]

let test_withdraw_origin_keeps_other_prefixes () =
  let other = Prefix.of_string "198.51.100.0/24" in
  let g = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4); (4, 5) ] in
  let net = Network.make g in
  Network.originate ~at:0.0 net 1 victim;
  Network.originate ~at:0.0 net 1 other;
  Network.withdraw ~at:50.0 net 1 victim;
  ignore (Network.run net);
  List.iter
    (fun asn ->
      Alcotest.(check bool)
        (Printf.sprintf "AS%d dropped the withdrawn prefix" asn)
        true
        (Network.best_route net asn victim = None);
      Alcotest.(check bool)
        (Printf.sprintf "AS%d keeps the untouched prefix" asn)
        true
        (Network.best_route net asn other <> None))
    [ 1; 2; 3; 4; 5 ]

let test_network_two_origins_anycast () =
  (* valid MOAS: both ends of a line originate; the middle splits *)
  let g = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4); (4, 5) ] in
  let net = Network.make g in
  Network.originate net 1 victim;
  Network.originate net 5 victim;
  ignore (Network.run net);
  let origin asn = Asn.to_int (Option.get (Network.best_origin net asn victim)) in
  Alcotest.(check int) "AS2 reaches the near origin" 1 (origin 2);
  Alcotest.(check int) "AS4 reaches the near origin" 5 (origin 4)

let test_network_converges_on_paper_topologies () =
  List.iter
    (fun t ->
      let net = Network.make t.Topology.Paper_topologies.graph in
      let origin = Asn.Set.min_elt t.Topology.Paper_topologies.stub in
      Network.originate net origin victim;
      Alcotest.(check bool)
        (t.Topology.Paper_topologies.name ^ " converges")
        true
        (Network.run net = Sim.Engine.Quiescent);
      Topology.As_graph.fold_nodes
        (fun asn () ->
          Alcotest.(check bool)
            (Printf.sprintf "AS%d reached" asn)
            true
            (Network.best_route net asn victim <> None))
        t.Topology.Paper_topologies.graph ())
    (Topology.Paper_topologies.all ())

let test_network_path_lengths_match_bfs () =
  let t = Topology.Paper_topologies.topology_46 () in
  let g = t.Topology.Paper_topologies.graph in
  let origin = Asn.Set.min_elt t.Topology.Paper_topologies.stub in
  let net = Network.make g in
  Network.originate net origin victim;
  ignore (Network.run net);
  let dist = Topology.Algorithms.bfs_distances g origin in
  Topology.As_graph.fold_nodes
    (fun asn () ->
      if not (Asn.equal asn origin) then begin
        let got =
          Bgp.As_path.length
            (Option.get (Network.best_route net asn victim)).Bgp.Route.as_path
        in
        Alcotest.(check int)
          (Printf.sprintf "AS%d selects a shortest path" asn)
          (Asn.Map.find asn dist) got
      end)
    g ()

let test_network_mrai_converges_same () =
  let g = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4); (4, 1); (2, 4) ] in
  let run mrai =
    let net = Network.make ~config:Network.Config.(default |> with_mrai_of (fun _ -> mrai)) g in
    Network.originate net 3 victim;
    ignore (Network.run net);
    List.map
      (fun asn ->
        Bgp.As_path.length
          (Option.get (Network.best_route net asn victim)).Bgp.Route.as_path)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int)) "MRAI does not change the outcome" (run 0.0)
    (run 30.0)

(* link state is keyed on the normalised endpoint pair ({!Asn.compare}
   order), so every operation must see the same link regardless of the
   direction it names the endpoints in *)
let test_link_state_symmetric () =
  let g = Topology.As_graph.of_edges [ (1, 2); (2, 3) ] in
  let net = Network.make g in
  let a = Asn.make 1 and b = Asn.make 2 in
  Alcotest.(check bool) "up initially" true (Network.link_is_up net a b);
  Network.fail_link_now net a b;
  Alcotest.(check bool) "down as (a,b)" false (Network.link_is_up net a b);
  Alcotest.(check bool) "down as (b,a)" false (Network.link_is_up net b a);
  Alcotest.(check bool) "other link untouched" true
    (Network.link_is_up net (Asn.make 2) (Asn.make 3));
  (* restore named the other way round must repair the same link *)
  Network.restore_link_now net b a;
  Alcotest.(check bool) "restored" true (Network.link_is_up net a b);
  let imp = Network.impairment ~loss:0.5 () in
  Network.impair_link net ~rng:(Mutil.Rng.of_int 7) a b imp;
  Alcotest.(check bool) "impairment visible as (b,a)" true
    (Network.link_impairment net b a = Some imp);
  Network.clear_link_impairment net b a;
  Alcotest.(check bool) "impairment cleared via (a,b)" true
    (Network.link_impairment net a b = None)

let test_default_link_delay_stable () =
  let delay = Network.Config.default.Network.Config.link_delay in
  List.iter
    (fun (a, b) ->
      let a = Asn.make a and b = Asn.make b in
      let d = delay a b in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "delay %d->%d stable across calls" (Asn.to_int a)
           (Asn.to_int b))
        d (delay a b);
      Alcotest.(check bool) "within [1, 1.25)" true (d >= 1.0 && d < 1.25))
    [ (1, 2); (2, 1); (7, 63); (1000, 4); (4, 1000) ]

let () =
  Alcotest.run "router_network"
    [
      ( "router",
        [
          Alcotest.test_case "originate advertises" `Quick
            test_originate_advertises_to_all_peers;
          Alcotest.test_case "loop detection" `Quick test_loop_detection;
          Alcotest.test_case "loop implicit withdraw" `Quick
            test_loop_detection_implicit_withdraw;
          Alcotest.test_case "split horizon" `Quick test_split_horizon;
          Alcotest.test_case "duplicate suppression" `Quick
            test_no_duplicate_advertisements;
          Alcotest.test_case "better route replaces" `Quick test_better_route_replaces;
          Alcotest.test_case "withdraw falls back" `Quick test_withdraw_falls_back;
          Alcotest.test_case "validator hook" `Quick test_validator_filters;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "network",
        [
          Alcotest.test_case "line convergence" `Quick test_network_line_convergence;
          Alcotest.test_case "ring shortest side" `Quick
            test_network_ring_prefers_short_side;
          Alcotest.test_case "withdraw ripples" `Quick test_network_withdraw_ripples;
          Alcotest.test_case "withdraw reaches every AS" `Quick
            test_withdraw_origin_reaches_every_as;
          Alcotest.test_case "withdraw reselects second origin" `Quick
            test_withdraw_origin_reselects_second_origin;
          Alcotest.test_case "withdraw keeps other prefixes" `Quick
            test_withdraw_origin_keeps_other_prefixes;
          Alcotest.test_case "two-origin anycast" `Quick test_network_two_origins_anycast;
          Alcotest.test_case "paper topologies converge" `Slow
            test_network_converges_on_paper_topologies;
          Alcotest.test_case "paths are shortest" `Slow
            test_network_path_lengths_match_bfs;
          Alcotest.test_case "MRAI invariance" `Quick test_network_mrai_converges_same;
          Alcotest.test_case "configured make" `Quick test_configured_make;
          Alcotest.test_case "link state symmetric" `Quick
            test_link_state_symmetric;
          Alcotest.test_case "link delay stable" `Quick
            test_default_link_delay_stable;
        ] );
    ]
