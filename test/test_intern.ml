(* Tests for Net.Intern (dense interning) and the injective int packing
   of Net.Prefix.to_key/of_key that the hot ingest paths key on. *)

open Net

let prefix_gen =
  QCheck2.Gen.(
    map
      (fun (n, l) -> Prefix.make (Ipv4.of_int n) l)
      (pair (int_range 0 0xffffffff) (int_range 0 32)))

let prefix_list_gen = QCheck2.Gen.(list_size (int_range 0 200) prefix_gen)

(* ---------------- key packing ---------------- *)

let prop_key_roundtrip =
  Testutil.qtest ~count:300 "to_key/of_key roundtrip" prefix_gen (fun p ->
      Prefix.equal p (Prefix.of_key (Prefix.to_key p)))

let prop_key_injective =
  Testutil.qtest ~count:300 "to_key injective"
    QCheck2.Gen.(pair prefix_gen prefix_gen)
    (fun (a, b) -> Prefix.equal a b = (Prefix.to_key a = Prefix.to_key b))

let test_key_bounds () =
  let check p =
    let k = Prefix.to_key p in
    Alcotest.(check bool)
      (Prefix.to_string p ^ " key fits 38 bits")
      true
      (k >= 0 && k < 1 lsl 38)
  in
  check (Prefix.of_string "0.0.0.0/0");
  check (Prefix.of_string "255.255.255.255/32");
  check (Prefix.of_string "192.0.2.0/24");
  Alcotest.check_raises "of_key rejects bad length"
    (Invalid_argument "Prefix.of_key: length out of range") (fun () ->
      ignore (Prefix.of_key 33))

(* ---------------- interning laws ---------------- *)

let prop_id_of_id =
  Testutil.qtest ~count:200 "of_id (id v) = v" prefix_list_gen (fun ps ->
      let t = Intern.prefixes () in
      List.for_all
        (fun p -> Prefix.equal p (Intern.of_id t (Intern.id t p)))
        ps)

let prop_equal_keys_equal_ids =
  Testutil.qtest ~count:200 "equal values get equal ids; ids are dense"
    prefix_list_gen (fun ps ->
      let t = Intern.prefixes () in
      let ids = List.map (fun p -> (p, Intern.id t p)) ps in
      let distinct =
        List.sort_uniq Prefix.compare ps |> List.length
      in
      Intern.count t = distinct
      && List.for_all (fun (p, i) -> i >= 0 && i < distinct && Intern.id t p = i) ids
      && List.for_all
           (fun (p, i) ->
             List.for_all
               (fun (q, j) -> Prefix.equal p q = (i = j))
               ids)
           ids)

let prop_find_never_interns =
  Testutil.qtest ~count:200 "find is -1 on unseen and never interns"
    QCheck2.Gen.(pair prefix_list_gen prefix_gen)
    (fun (ps, probe) ->
      let t = Intern.prefixes () in
      List.iter (fun p -> ignore (Intern.id t p)) ps;
      let before = Intern.count t in
      let found = Intern.find t probe in
      Intern.count t = before
      && (found >= 0) = List.exists (Prefix.equal probe) ps
      && (found < 0 || Prefix.equal probe (Intern.of_id t found)))

(* Rebuilding an interner from its value sequence (the checkpoint-restore
   path: ids are never serialised, a restored table re-interns in
   snapshot order) reproduces the same id assignment. *)
let prop_rebuild_same_ids =
  Testutil.qtest ~count:200 "re-interning in id order reproduces ids"
    prefix_list_gen (fun ps ->
      let t = Intern.prefixes () in
      List.iter (fun p -> ignore (Intern.id t p)) ps;
      let t2 = Intern.prefixes () in
      Intern.iter t (fun _ p -> ignore (Intern.id t2 p));
      let ok = ref (Intern.count t = Intern.count t2) in
      Intern.iter t (fun i p ->
          if not (Intern.id t2 p = i && Prefix.equal (Intern.of_id t2 i) p) then
            ok := false);
      !ok)

let test_of_id_bounds () =
  let t = Intern.asns () in
  ignore (Intern.id t (Asn.make 65000));
  Alcotest.(check int) "asn interner keys by number" 0 (Intern.find t (Asn.make 65000));
  Alcotest.check_raises "of_id below range"
    (Invalid_argument "Intern.of_id: -1 outside [0,1)") (fun () ->
      ignore (Intern.of_id t (-1)));
  Alcotest.check_raises "of_id above range"
    (Invalid_argument "Intern.of_id: 1 outside [0,1)") (fun () ->
      ignore (Intern.of_id t 1))

let () =
  Alcotest.run "intern"
    [
      ( "keys",
        [
          Alcotest.test_case "packing bounds" `Quick test_key_bounds;
          prop_key_roundtrip;
          prop_key_injective;
        ] );
      ( "laws",
        [
          Alcotest.test_case "of_id bounds" `Quick test_of_id_bounds;
          prop_id_of_id;
          prop_equal_keys_equal_ids;
          prop_find_never_interns;
          prop_rebuild_same_ids;
        ] );
    ]
