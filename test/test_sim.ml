(* Tests for the discrete-event engine: Event_queue ordering, Engine
   scheduling semantics, and Trace. *)

module Eq = Sim.Event_queue
module Engine = Sim.Engine
module Trace = Sim.Trace

let test_queue_empty () =
  let q = Eq.create () in
  Alcotest.(check bool) "fresh queue empty" true (Eq.is_empty q);
  Alcotest.(check (option (pair (float 0.0) int))) "pop empty" None (Eq.pop q);
  Alcotest.(check (option (float 0.0))) "peek empty" None (Eq.peek_time q)

let test_queue_orders_by_time () =
  let q = Eq.create () in
  List.iter (fun t -> Eq.push q ~time:t (int_of_float t)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = ref [] in
  let rec drain () =
    match Eq.pop q with
    | Some (_, v) ->
      order := v :: !order;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending time" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_queue_fifo_ties () =
  let q = Eq.create () in
  List.iter (fun v -> Eq.push q ~time:7.0 v) [ 1; 2; 3; 4 ];
  let rec drain acc =
    match Eq.pop q with
    | Some (_, v) -> drain (v :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list int)) "insertion order preserved on ties" [ 1; 2; 3; 4 ]
    (drain [])

let test_queue_interleaved () =
  let q = Eq.create () in
  Eq.push q ~time:2.0 "b";
  Eq.push q ~time:1.0 "a";
  Alcotest.(check (option (pair (float 0.0) string))) "first pop" (Some (1.0, "a")) (Eq.pop q);
  Eq.push q ~time:0.5 "c";
  Alcotest.(check (option (pair (float 0.0) string))) "new earlier event wins" (Some (0.5, "c"))
    (Eq.pop q);
  Alcotest.(check int) "one left" 1 (Eq.length q)

let test_queue_rejects_nan () =
  let q = Eq.create () in
  Alcotest.check_raises "NaN time" (Invalid_argument "Event_queue.push: NaN time")
    (fun () -> Eq.push q ~time:Float.nan ())

let test_queue_clear () =
  let q = Eq.create () in
  Eq.push q ~time:1.0 ();
  Eq.clear q;
  Alcotest.(check bool) "cleared" true (Eq.is_empty q)

let prop_queue_sorted =
  Testutil.qtest "pops are sorted for arbitrary pushes"
    QCheck2.Gen.(list_size (int_range 0 200) (float_range 0.0 1000.0))
    (fun times ->
      let q = Eq.create () in
      List.iter (fun t -> Eq.push q ~time:t t) times;
      let rec drain acc =
        match Eq.pop q with
        | Some (t, _) -> drain (t :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      popped = List.sort compare times)

(* regression: ordering on equal timestamps is FIFO in insertion order,
   not merely "some stable permutation" — the heap's (time, seq) key must
   behave exactly like a stable sort of the insertion sequence. *)
let prop_queue_fifo_on_ties =
  Testutil.qtest "equal-time events pop in insertion order"
    QCheck2.Gen.(list_size (int_range 0 300) (int_range 0 5))
    (fun coarse_times ->
      let q = Eq.create () in
      let tagged = List.mapi (fun i t -> (float_of_int t, i)) coarse_times in
      List.iter (fun (t, i) -> Eq.push q ~time:t (t, i)) tagged;
      let rec drain acc =
        match Eq.pop q with
        | Some (_, v) -> drain (v :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      let expected =
        List.stable_sort (fun (a, _) (b, _) -> compare a b) tagged
      in
      popped = expected)

(* scale regression: 10k pushes with random (and heavily tied) times must
   drain in exactly (time, insertion-sequence) order — a stable sort of
   the insertion stream, even when the heap has grown and shrunk *)
let test_queue_10k_random () =
  let rng = Mutil.Rng.of_int 0x10c in
  let q = Eq.create () in
  let n = 10_000 in
  let tagged =
    List.init n (fun i -> (float_of_int (Mutil.Rng.int rng 500), i))
  in
  List.iter (fun (t, i) -> Eq.push q ~time:t (t, i)) tagged;
  Alcotest.(check int) "all queued" n (Eq.length q);
  let rec drain acc =
    match Eq.pop q with
    | Some (_, v) -> drain (v :: acc)
    | None -> List.rev acc
  in
  let expected =
    List.stable_sort (fun (a, _) (b, _) -> compare a b) tagged
  in
  Alcotest.(check bool) "stable (time, seq) order over 10k events" true
    (drain [] = expected);
  Alcotest.(check bool) "drained" true (Eq.is_empty q)

let test_engine_runs_in_order () =
  let engine = Engine.create () in
  let log = ref [] in
  Engine.schedule engine ~delay:3.0 (fun e ->
      log := ("c", Engine.now e) :: !log);
  Engine.schedule engine ~delay:1.0 (fun e ->
      log := ("a", Engine.now e) :: !log;
      (* handlers can schedule further events *)
      Engine.schedule e ~delay:1.0 (fun e -> log := ("b", Engine.now e) :: !log));
  let outcome = Engine.run engine in
  Alcotest.(check bool) "quiescent" true (outcome = Engine.Quiescent);
  Alcotest.(check (list (pair string (float 1e-9)))) "order and clock"
    [ ("a", 1.0); ("b", 2.0); ("c", 3.0) ]
    (List.rev !log);
  Alcotest.(check int) "3 events executed" 3 (Engine.events_executed engine)

let test_engine_event_limit () =
  let engine = Engine.create () in
  (* a self-perpetuating event: the budget must stop it *)
  let rec tick e = Engine.schedule e ~delay:1.0 tick in
  Engine.schedule engine ~delay:1.0 tick;
  let outcome = Engine.run ~max_events:10 engine in
  Alcotest.(check bool) "limit reached" true (outcome = Engine.Event_limit_reached);
  Alcotest.(check int) "exactly budget" 10 (Engine.events_executed engine)

let test_engine_time_horizon () =
  let engine = Engine.create () in
  let ran = ref 0 in
  Engine.schedule engine ~delay:1.0 (fun _ -> incr ran);
  Engine.schedule engine ~delay:100.0 (fun _ -> incr ran);
  let outcome = Engine.run ~until:10.0 engine in
  Alcotest.(check bool) "horizon" true (outcome = Engine.Time_limit_reached);
  Alcotest.(check int) "only events within horizon ran" 1 !ran;
  Alcotest.(check int) "late event still queued" 1 (Engine.pending engine)

let test_engine_rejects_past () =
  let engine = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule engine ~delay:(-1.0) (fun _ -> ()));
  Engine.schedule engine ~delay:5.0 (fun _ -> ());
  ignore (Engine.run engine);
  Alcotest.check_raises "absolute time in the past"
    (Invalid_argument "Engine.schedule_at: time in the past") (fun () ->
      Engine.schedule_at engine ~time:1.0 (fun _ -> ()))

let test_engine_reset () =
  let engine = Engine.create () in
  Engine.schedule engine ~delay:1.0 (fun _ -> ());
  ignore (Engine.run engine);
  Engine.reset engine;
  Alcotest.(check (float 0.0)) "clock rewound" 0.0 (Engine.now engine);
  Alcotest.(check int) "no pending" 0 (Engine.pending engine);
  Alcotest.(check int) "counter reset" 0 (Engine.events_executed engine)

(* regression: reset must restore a FULLY fresh engine even when events
   are still pending, including the queue high-water mark, and the engine
   must be reusable afterwards (scheduling at times "before" the old
   clock). *)
let test_engine_reset_discards_pending () =
  let engine = Engine.create () in
  let ran = ref 0 in
  Engine.schedule engine ~delay:1.0 (fun _ -> incr ran);
  Engine.schedule engine ~delay:100.0 (fun _ -> incr ran);
  ignore (Engine.run ~until:10.0 engine);
  Alcotest.(check int) "one pending before reset" 1 (Engine.pending engine);
  Engine.reset engine;
  Alcotest.(check (float 0.0)) "clock rewound" 0.0 (Engine.now engine);
  Alcotest.(check int) "pending event dropped" 0 (Engine.pending engine);
  Alcotest.(check int) "executed counter reset" 0 (Engine.events_executed engine);
  Alcotest.(check int) "queue high-water reset" 0 (Engine.queue_high_water engine);
  (* the rewound clock really is fresh: t=0.5 was "the past" before reset *)
  Engine.schedule_at engine ~time:0.5 (fun _ -> incr ran);
  let outcome = Engine.run engine in
  Alcotest.(check bool) "reused engine quiesces" true (outcome = Engine.Quiescent);
  Alcotest.(check int) "only the new event ran" 2 !ran;
  Alcotest.(check int) "counter counts only the new run" 1
    (Engine.events_executed engine)

let test_engine_cancel_before_fire () =
  let engine = Engine.create () in
  let ran = ref 0 in
  let handle = Engine.schedule_cancellable engine ~delay:1.0 (fun _ -> incr ran) in
  Engine.schedule engine ~delay:2.0 (fun _ -> incr ran);
  Alcotest.(check bool) "not cancelled yet" false (Engine.is_cancelled handle);
  Engine.cancel handle;
  Alcotest.(check bool) "marked cancelled" true (Engine.is_cancelled handle);
  let outcome = Engine.run engine in
  Alcotest.(check bool) "quiescent" true (outcome = Engine.Quiescent);
  Alcotest.(check int) "only the live event ran" 1 !ran;
  (* the cancelled slot is still drained through the queue *)
  Alcotest.(check int) "slot counted" 2 (Engine.events_executed engine)

let test_engine_cancel_from_handler () =
  (* an earlier event retracts a later one mid-run — the injector's stop *)
  let engine = Engine.create () in
  let ran = ref 0 in
  let handle =
    Engine.schedule_at_cancellable engine ~time:5.0 (fun _ -> incr ran)
  in
  Engine.schedule_at engine ~time:1.0 (fun _ -> Engine.cancel handle);
  ignore (Engine.run engine);
  Alcotest.(check int) "retracted event never ran" 0 !ran

let test_engine_cancel_after_fire_is_inert () =
  let engine = Engine.create () in
  let ran = ref 0 in
  let handle = Engine.schedule_cancellable engine ~delay:1.0 (fun _ -> incr ran) in
  ignore (Engine.run engine);
  Alcotest.(check int) "event ran" 1 !ran;
  (* cancelling after the fact (or twice) is a safe no-op *)
  Engine.cancel handle;
  Engine.cancel handle;
  Alcotest.(check bool) "reports cancelled" true (Engine.is_cancelled handle);
  Engine.reset engine;
  Engine.cancel handle;
  Engine.schedule engine ~delay:1.0 (fun _ -> incr ran);
  ignore (Engine.run engine);
  Alcotest.(check int) "fresh events unaffected" 2 !ran

let test_trace () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 "a";
  Trace.record tr ~time:2.0 "b";
  Trace.record tr ~time:3.0 "a";
  Alcotest.(check int) "length" 3 (Trace.length tr);
  Alcotest.(check (list string)) "order preserved" [ "a"; "b"; "a" ]
    (List.map (fun r -> r.Trace.event) (Trace.to_list tr));
  Alcotest.(check int) "filter" 2 (List.length (Trace.filter (( = ) "a") tr));
  Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Trace.length tr)

let () =
  Alcotest.run "sim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "empty" `Quick test_queue_empty;
          Alcotest.test_case "time order" `Quick test_queue_orders_by_time;
          Alcotest.test_case "FIFO ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "interleaved push/pop" `Quick test_queue_interleaved;
          Alcotest.test_case "NaN rejected" `Quick test_queue_rejects_nan;
          Alcotest.test_case "clear" `Quick test_queue_clear;
          Alcotest.test_case "10k random pushes" `Quick test_queue_10k_random;
        ] );
      ( "engine",
        [
          Alcotest.test_case "in-order execution" `Quick test_engine_runs_in_order;
          Alcotest.test_case "event limit" `Quick test_engine_event_limit;
          Alcotest.test_case "time horizon" `Quick test_engine_time_horizon;
          Alcotest.test_case "past scheduling rejected" `Quick test_engine_rejects_past;
          Alcotest.test_case "reset" `Quick test_engine_reset;
          Alcotest.test_case "reset discards pending state" `Quick
            test_engine_reset_discards_pending;
          Alcotest.test_case "cancel before fire" `Quick
            test_engine_cancel_before_fire;
          Alcotest.test_case "cancel from a handler" `Quick
            test_engine_cancel_from_handler;
          Alcotest.test_case "cancel after fire is inert" `Quick
            test_engine_cancel_after_fire_is_inert;
        ] );
      ("trace", [ Alcotest.test_case "record/filter" `Quick test_trace ]);
      ("properties", [ prop_queue_sorted; prop_queue_fifo_on_ties ]);
    ]
