(* Tests for lib/stream: online monitor state machine, episode lifecycle,
   MOAS-list validation at settle points, sharded ingest determinism,
   checkpoint/restore, and agreement with the snapshot-based
   Measurement.Moas_cases analysis on the same synthetic archive. *)

open Net
module M = Stream.Monitor
module Sh = Stream.Sharded
module Ck = Stream.Checkpoint
module Src = Stream.Source
module Rp = Stream.Report
module Srv = Measurement.Synthetic_routeviews
module Mc = Measurement.Moas_cases

let p1 = Prefix.of_string "192.0.2.0/24"
let day = M.default_config.M.day_seconds

let ev ?(peer = 99) ~time prefix action =
  { M.time; peer = Asn.make peer; prefix; action }

let ann ?list o =
  M.Announce { origin = Asn.make o; moas_list = Option.map Asn.Set.of_list list }

let wd o = M.Withdraw { origin = Asn.make o }

(* the 1/10-size archive used for CI smoke runs *)
let smoke_params =
  {
    Srv.default_params with
    Srv.universe_size = 400;
    initial_long_lived = 65;
    final_long_lived = 139;
    one_day_churn = 24;
    medium_churn = 9;
    event_1998_size = 114;
    event_2001_size = 97;
  }

let distrusted = Asn.Set.of_list [ Srv.fault_as_1998; Srv.fault_as_2001 ]
let annotate = Src.trusted_annotator ~distrusted ()

(* ---------------- episode lifecycle ---------------- *)

let test_lifecycle () =
  let m = M.create M.default_config in
  M.ingest m (ev ~time:0 p1 (ann ~list:[ 10; 20 ] 10));
  Alcotest.(check int) "single origin, no episode" 0 (M.open_count m);
  M.ingest m (ev ~time:10 p1 (ann ~list:[ 10; 20 ] 20));
  Alcotest.(check int) "episode opens on second origin" 1 (M.open_count m);
  M.mark_day m ~time:day;
  M.ingest m (ev ~time:(day + 100) p1 (wd 20));
  Alcotest.(check int) "episode closes on withdrawal" 0 (M.open_count m);
  let sn = M.snapshot m in
  (match sn.M.s_closed with
  | [ e ] ->
    Alcotest.(check int) "one conflicted day" 1 e.M.e_days;
    Alcotest.(check int) "first episode of the prefix" 1 e.M.e_seq;
    Alcotest.(check int) "started when the set grew" 10 e.M.e_started;
    Alcotest.(check int) "ended at the withdrawal" (day + 100) e.M.e_ended;
    Alcotest.(check int) "largest origin set" 2 e.M.e_max_origins;
    Alcotest.(check bool) "validated by consistent lists" true e.M.e_clean;
    Alcotest.check Testutil.asn_set_testable "origins ever"
      (Asn.Set.of_list [ 10; 20 ])
      e.M.e_origins_ever
  | eps -> Alcotest.failf "expected 1 closed episode, got %d" (List.length eps));
  let c = sn.M.s_counters in
  Alcotest.(check int) "updates" 3 c.M.c_updates;
  Alcotest.(check int) "announces" 2 c.M.c_announces;
  Alcotest.(check int) "withdraws" 1 c.M.c_withdraws;
  Alcotest.(check int) "opened" 1 c.M.c_opened;
  Alcotest.(check int) "closed" 1 c.M.c_closed;
  Alcotest.(check int) "no alerts: lists agreed" 0 c.M.c_alerts;
  Alcotest.(check int) "days observed" 1 c.M.c_days

let test_validation_flags () =
  let m = M.create M.default_config in
  M.ingest m (ev ~time:0 p1 (ann ~list:[ 10; 20 ] 10));
  M.ingest m (ev ~time:1 p1 (ann 20));
  (* the conflict exists but validation waits for the settle point *)
  Alcotest.(check int) "open before settle" 1 (M.open_count m);
  let before = (M.snapshot m).M.s_counters.M.c_alerts in
  Alcotest.(check int) "no alert before settle" 0 before;
  M.settle m ~time:2;
  let sn = M.snapshot m in
  Alcotest.(check int) "one alert after settle" 1 sn.M.s_counters.M.c_alerts;
  (match sn.M.s_prefixes with
  | [ p ] ->
    (match p.M.p_open with
    | Some o -> Alcotest.(check bool) "episode flagged" false o.M.o_clean
    | None -> Alcotest.fail "episode vanished")
  | _ -> Alcotest.fail "expected one prefix state");
  (* a flagged episode never alerts twice *)
  M.ingest m (ev ~time:3 p1 (ann 30));
  M.settle m ~time:4;
  Alcotest.(check int) "still one alert" 1
    (M.snapshot m).M.s_counters.M.c_alerts

let test_recurrence () =
  let m = M.create M.default_config in
  let conflict t =
    M.ingest m (ev ~time:t p1 (ann ~list:[ 10; 20 ] 10));
    M.ingest m (ev ~time:(t + 1) p1 (ann ~list:[ 10; 20 ] 20));
    M.mark_day m ~time:(t + day);
    M.ingest m (ev ~time:(t + day + 1) p1 (wd 20))
  in
  conflict 0;
  conflict (10 * day);
  let sn = M.snapshot m in
  Alcotest.(check (list int)) "recurrence indices" [ 1; 2 ]
    (List.map (fun e -> e.M.e_seq) sn.M.s_closed);
  (match sn.M.s_prefixes with
  | [ p ] -> Alcotest.(check int) "closed count" 2 p.M.p_closed_count
  | _ -> Alcotest.fail "expected one prefix state");
  Testutil.check_contains ~what:"report" (Rp.render sn)
    "1 prefixes conflicted more than once"

let test_origins_validated () =
  let map entries =
    List.fold_left
      (fun acc (o, l) ->
        Asn.Map.add (Asn.make o) (Option.map Asn.Set.of_list l) acc)
      Asn.Map.empty entries
  in
  let check name expected entries =
    Alcotest.(check bool) name expected (M.origins_validated (map entries))
  in
  check "no origins" true [];
  check "single origin, no list" true [ (10, None) ];
  check "consistent covering lists" true
    [ (10, Some [ 10; 20 ]); (20, Some [ 10; 20 ]) ];
  check "superset lists still cover" true
    [ (10, Some [ 10; 20; 30 ]); (20, Some [ 10; 20; 30 ]) ];
  check "one origin without a list" false
    [ (10, Some [ 10; 20 ]); (20, None) ];
  check "disagreeing lists" false
    [ (10, Some [ 10; 20 ]); (20, Some [ 10; 30 ]) ];
  check "agreed list missing an origin" false
    [ (10, Some [ 10 ]); (20, Some [ 10 ]) ]

let test_windows () =
  let m = M.create M.default_config in
  M.ingest m (ev ~time:100 p1 (ann 10));
  M.ingest m (ev ~time:200 p1 (ann 20));
  M.settle m ~time:300;
  M.ingest m (ev ~time:((5 * day) + 1) p1 (wd 20));
  let sn = M.snapshot m in
  Alcotest.(check (list int)) "window indices" [ 0; 5 ]
    (List.map fst sn.M.s_windows);
  let sum f =
    List.fold_left (fun acc (_, w) -> acc + f w) 0 sn.M.s_windows
  in
  let c = sn.M.s_counters in
  Alcotest.(check int) "updates windowed" c.M.c_updates (sum (fun w -> w.M.w_updates));
  Alcotest.(check int) "opens windowed" c.M.c_opened (sum (fun w -> w.M.w_opened));
  Alcotest.(check int) "closes windowed" c.M.c_closed (sum (fun w -> w.M.w_closed));
  Alcotest.(check int) "alerts windowed" c.M.c_alerts (sum (fun w -> w.M.w_alerts))

let test_config_validation () =
  List.iter
    (fun (name, cfg) ->
      match M.create cfg with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "%s accepted" name)
    [
      ("zero window", { M.default_config with M.window = 0 });
      ( "inverted buckets",
        { M.default_config with M.short_max_days = 9; medium_max_days = 3 } );
      ("zero day", { M.default_config with M.day_seconds = 0 });
    ]

(* ---------------- the archive as a stream ---------------- *)

let archive_monitor ?metrics ~jobs () =
  let t = Sh.create ?metrics ~jobs M.default_config in
  Array.iter
    (fun b -> Sh.ingest_batch ~day_end:true t ~time:b.Src.time b.Src.events)
    (Src.archive_batches ~annotate smoke_params);
  t

let test_sharding_invariance () =
  let r1 = Rp.render (Sh.snapshot (archive_monitor ~jobs:1 ())) in
  let r4 = Rp.render (Sh.snapshot (archive_monitor ~jobs:4 ())) in
  Alcotest.(check string) "reports identical at jobs 1 and 4" r1 r4

let test_alerts_spike_on_fault_days () =
  let sn = Sh.snapshot (archive_monitor ~jobs:2 ()) in
  let alert_days =
    List.filter_map
      (fun (i, w) -> if w.M.w_alerts > 0 then Some i else None)
      sn.M.s_windows
  in
  Alcotest.(check (list int)) "alerts exactly on the fault days"
    [ Srv.event_1998; Srv.event_2001 ]
    alert_days;
  let alerts_on d =
    match List.assoc_opt d sn.M.s_windows with
    | Some w -> w.M.w_alerts
    | None -> 0
  in
  Alcotest.(check int) "1998 event size" smoke_params.Srv.event_1998_size
    (alerts_on Srv.event_1998);
  Alcotest.(check int) "2001 event size" smoke_params.Srv.event_2001_size
    (alerts_on Srv.event_2001)

let test_archive_agrees_with_moas_cases () =
  (* the online monitor and the snapshot-based Section 3 analysis must
     count the same conflicted days over the same archive *)
  let sn = Sh.snapshot (archive_monitor ~jobs:3 ()) in
  let summary =
    Mc.finalize
      (Srv.fold_dumps smoke_params ~init:Mc.empty ~f:(fun acc d ->
           Mc.ingest acc ~day:d.Srv.day d.Srv.table))
  in
  Alcotest.(check int) "observed days" summary.Mc.observed_day_count
    sn.M.s_counters.M.c_days;
  (* accumulate per-prefix (days, origins, max) over closed + open episodes *)
  let tbl = Hashtbl.create 256 in
  let add prefix days origins max_o =
    let d0, o0, m0 =
      Option.value ~default:(0, Asn.Set.empty, 0)
        (Hashtbl.find_opt tbl prefix)
    in
    Hashtbl.replace tbl prefix
      (d0 + days, Asn.Set.union o0 origins, max m0 max_o)
  in
  List.iter
    (fun e -> add e.M.e_prefix e.M.e_days e.M.e_origins_ever e.M.e_max_origins)
    sn.M.s_closed;
  List.iter
    (fun p ->
      match p.M.p_open with
      | Some o -> add p.M.p_prefix o.M.o_days o.M.o_origins_ever o.M.o_max_origins
      | None -> ())
    sn.M.s_prefixes;
  Alcotest.(check int) "same number of conflicted prefixes"
    (List.length summary.Mc.cases) (Hashtbl.length tbl);
  List.iter
    (fun (case : Mc.case) ->
      match Hashtbl.find_opt tbl case.Mc.prefix with
      | None ->
        Alcotest.failf "case %s missing from the stream monitor"
          (Prefix.to_string case.Mc.prefix)
      | Some (days, origins, max_o) ->
        Alcotest.(check int)
          (Printf.sprintf "days for %s" (Prefix.to_string case.Mc.prefix))
          case.Mc.moas_days days;
        Alcotest.check Testutil.asn_set_testable
          (Printf.sprintf "origins for %s" (Prefix.to_string case.Mc.prefix))
          case.Mc.origins_ever origins;
        Alcotest.(check int)
          (Printf.sprintf "max origins for %s" (Prefix.to_string case.Mc.prefix))
          case.Mc.max_origins max_o)
    summary.Mc.cases

let test_metrics_flow () =
  let metrics = Obs.Registry.create () in
  let t = archive_monitor ~metrics ~jobs:2 () in
  let merged = Sh.metrics t in
  let v name = Obs.Registry.counter_value merged name in
  Alcotest.(check int) "updates counter" (Sh.update_count t)
    (v "stream_updates_total");
  Alcotest.(check int) "announce + withdraw split" (Sh.update_count t)
    (v "stream_announces_total" + v "stream_withdraws_total");
  Alcotest.(check int) "days counter" (Sh.day_count t) (v "stream_days_total");
  Alcotest.(check int) "batches counter" (Sh.day_count t)
    (v "stream_batches_total");
  let sn = Sh.snapshot t in
  Alcotest.(check int) "opened counter" sn.M.s_counters.M.c_opened
    (v "stream_episodes_opened_total");
  Alcotest.(check int) "alerts counter" sn.M.s_counters.M.c_alerts
    (v "stream_alerts_total")

(* ---------------- checkpoint/restore ---------------- *)

let test_checkpoint_roundtrip () =
  let sn = Sh.snapshot (archive_monitor ~jobs:2 ()) in
  let bytes = Ck.encode sn in
  let sn2 = Ck.decode bytes in
  Alcotest.(check string) "render survives the roundtrip" (Rp.render sn)
    (Rp.render sn2);
  Alcotest.(check bool) "re-encoding is byte-identical" true
    (Bytes.equal bytes (Ck.encode sn2))

let test_checkpoint_empty () =
  let sn = M.empty_snapshot M.default_config in
  Alcotest.(check string) "empty snapshot roundtrips"
    (Rp.render sn)
    (Rp.render (Ck.decode (Ck.encode sn)))

let test_checkpoint_rejects_corruption () =
  let bytes = Ck.encode (Sh.snapshot (archive_monitor ~jobs:1 ())) in
  let expect name b =
    match Ck.decode b with
    | exception Ck.Corrupt _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  expect "truncated" (Bytes.sub bytes 0 (Bytes.length bytes - 3));
  expect "trailing octets" (Bytes.cat bytes (Bytes.make 1 '\x00'));
  let bad_magic = Bytes.copy bytes in
  Bytes.set bad_magic 0 'X';
  expect "bad magic" bad_magic;
  let bad_version = Bytes.copy bytes in
  Bytes.set bad_version 8 '\x09';
  expect "unknown version" bad_version;
  expect "empty" Bytes.empty

let test_checkpoint_restore_converges () =
  (* checkpoint mid-stream at one job count, restore at another, replay
     the rest: the final report equals the uninterrupted run's *)
  let batches = Src.archive_batches ~annotate smoke_params in
  let split = Array.length batches / 2 in
  let t = Sh.create ~jobs:2 M.default_config in
  Array.iteri
    (fun i b ->
      if i < split then
        Sh.ingest_batch ~day_end:true t ~time:b.Src.time b.Src.events)
    batches;
  let bytes = Ck.encode (Sh.snapshot t) in
  let snap = Ck.decode bytes in
  let resumed = Sh.of_snapshot ~jobs:3 snap in
  Array.iter
    (fun b ->
      if b.Src.time > snap.M.s_last_time then
        Sh.ingest_batch ~day_end:true resumed ~time:b.Src.time b.Src.events)
    batches;
  let uninterrupted = Rp.render (Sh.snapshot (archive_monitor ~jobs:1 ())) in
  Alcotest.(check string) "resumed run converges" uninterrupted
    (Rp.render (Sh.snapshot resumed))

let test_restore_recredits_metrics () =
  let sn = Sh.snapshot (archive_monitor ~jobs:2 ()) in
  let metrics = Obs.Registry.create () in
  let restored = Sh.of_snapshot ~metrics ~jobs:2 sn in
  Alcotest.(check int) "restored update counter"
    sn.M.s_counters.M.c_updates
    (Obs.Registry.counter_value (Sh.metrics restored) "stream_updates_total")

(* ---------------- other sources ---------------- *)

let test_of_mrt () =
  let records =
    [
      {
        Measurement.Mrt.timestamp = 100;
        peer_as = Asn.make 4;
        prefix = p1;
        as_path = Bgp.As_path.of_list [ 4; 7 ];
      };
      {
        Measurement.Mrt.timestamp = 200;
        peer_as = Asn.make 5;
        prefix = p1;
        as_path = Bgp.As_path.of_list [ 5 ];
      };
    ]
  in
  let batch = Src.of_mrt (Measurement.Mrt.encode_records records) in
  Alcotest.(check int) "batch time = latest record" 200 batch.Src.time;
  Alcotest.(check int) "one event per record" 2 (Array.length batch.Src.events);
  match batch.Src.events.(0).M.action with
  | M.Announce { origin; _ } ->
    Alcotest.(check int) "origin = path tail" 7 (Asn.to_int origin)
  | M.Withdraw _ -> Alcotest.fail "MRT records are announcements"

let test_of_wire () =
  let message =
    {
      Bgp.Wire.withdrawn = [ Prefix.of_string "10.0.0.0/8" ];
      attributes =
        Some
          {
            Bgp.Wire.origin = Bgp.Route.Igp;
            as_path = Bgp.As_path.of_list [ 9; 4 ];
            local_pref = 100;
            communities = Moas.Moas_list.encode (Asn.Set.of_list [ 4; 226 ]);
          };
      nlri = [ p1 ];
    }
  in
  let events = Src.of_wire ~time:7 ~peer:(Asn.make 9) message in
  Alcotest.(check int) "withdraw + announce" 2 (Array.length events);
  (match events.(0).M.action with
  | M.Withdraw { origin } ->
    Alcotest.(check int) "withdraw attributed to the peer" 9 (Asn.to_int origin)
  | M.Announce _ -> Alcotest.fail "withdrawals come first");
  match events.(1).M.action with
  | M.Announce { origin; moas_list } ->
    Alcotest.(check int) "origin from the path tail" 4 (Asn.to_int origin);
    Alcotest.check
      (Alcotest.option Testutil.asn_set_testable)
      "MOAS list decoded from communities"
      (Some (Asn.Set.of_list [ 4; 226 ]))
      moas_list
  | M.Withdraw _ -> Alcotest.fail "announcement lost"

(* ---------------- the uniform pull interface ---------------- *)

let batch_signature b =
  ( b.Src.time,
    Option.map Mutil.Day.to_string b.Src.day,
    Array.map (fun e -> (e.M.time, Prefix.to_string e.M.prefix)) b.Src.events )

let test_source_pull_equals_fold () =
  (* draining the pull source yields exactly the fold_archive batches *)
  let folded =
    List.rev
      (Src.fold_archive ~annotate smoke_params ~init:[] ~f:(fun acc b ->
           b :: acc))
  in
  let s = Src.of_archive ~annotate smoke_params in
  let pulled = List.rev (Src.fold s ~init:[] ~f:(fun acc b -> b :: acc)) in
  Alcotest.(check int) "same batch count" (List.length folded)
    (List.length pulled);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "same batch" true
        (batch_signature a = batch_signature b))
    folded pulled;
  Alcotest.(check bool) "exhausted after fold" true (Src.next s = None)

let test_source_close_is_final () =
  let s = Src.of_batches (Src.archive_batches ~annotate smoke_params) in
  Alcotest.(check bool) "first pull succeeds" true (Src.next s <> None);
  Src.close s;
  Src.close s;
  Alcotest.(check bool) "closed source yields nothing" true (Src.next s = None)

let test_ingest_source_equals_batch_loop () =
  (* the single ingestion entry point converges with the manual loop,
     including when the drain is split by max_batches *)
  let t = Sh.create ~jobs:2 M.default_config in
  let s = Src.of_archive ~annotate smoke_params in
  let first = Sh.ingest_source ~max_batches:3 t s in
  Alcotest.(check int) "max_batches honoured" 3 first;
  let rest = Sh.ingest_source t s in
  Alcotest.(check int) "the whole archive ingested" (Sh.day_count t)
    (first + rest);
  Alcotest.(check string) "converges with the batch loop"
    (Rp.render (Sh.snapshot (archive_monitor ~jobs:2 ())))
    (Rp.render (Sh.snapshot t))

let test_ingest_source_since_skips () =
  (* resume semantics: batches at or before `since` are skipped, matching
     what a checkpoint restore needs *)
  let batches = Src.archive_batches ~annotate smoke_params in
  let split_time = batches.(Array.length batches / 2).Src.time in
  let t = Sh.create ~jobs:1 M.default_config in
  let skipped =
    Sh.ingest_source ~since:split_time t (Src.of_batches batches)
  in
  let expected =
    Array.length (Array.of_list (List.filter (fun b -> b.Src.time > split_time) (Array.to_list batches)))
  in
  Alcotest.(check int) "only later batches ingested" expected skipped

exception Boom

let test_ingest_source_closes_on_failure () =
  (* a failing pull must not leak the source: ingest_source closes it
     before the exception escapes, and the monitor stops exactly at the
     last completed batch *)
  let batches = Src.archive_batches ~annotate smoke_params in
  let keep = 3 in
  let rec seq n bs () =
    if n = 0 then raise Boom
    else
      match bs with
      | [] -> Seq.Nil
      | b :: tl -> Seq.Cons (b, seq (n - 1) tl)
  in
  let s = Src.of_seq (seq keep (Array.to_list batches)) in
  let t = Sh.create ~jobs:1 M.default_config in
  (match Sh.ingest_source t s with
  | _ -> Alcotest.fail "the source failure was swallowed"
  | exception Boom -> ());
  Alcotest.(check int) "batches before the failure are ingested" keep
    (Sh.day_count t);
  Alcotest.(check bool) "the failed source was closed" true (Src.next s = None)

(* ---------------- qcheck properties ---------------- *)

let script_prefixes =
  [|
    Prefix.of_string "10.0.0.0/8";
    Prefix.of_string "192.0.2.0/24";
    Prefix.of_string "198.51.100.0/24";
    Prefix.of_string "203.0.113.0/24";
  |]

let script_gen =
  QCheck2.Gen.(
    list_size (int_range 0 150)
      (triple (int_range 0 3) (int_range 1 6) (int_range 0 3)))

let act o = function
  | 0 -> wd o
  | 1 -> ann o
  | 2 -> ann ~list:[ 1; 2; 3; 4; 5; 6 ] o
  | _ -> ann ~list:[ o ] o

let rec chunk n = function
  | [] -> []
  | l ->
    let rec take k = function
      | x :: tl when k > 0 ->
        let a, b = take (k - 1) tl in
        (x :: a, b)
      | rest -> ([], rest)
    in
    let a, b = take n l in
    a :: chunk n b

let feed_sharded jobs script =
  let t = Sh.create ~jobs M.default_config in
  let events =
    List.mapi
      (fun i (pi, o, k) -> ev ~time:(i * 1000) script_prefixes.(pi) (act o k))
      script
  in
  List.iter
    (fun batch ->
      let arr = Array.of_list batch in
      let time = arr.(Array.length arr - 1).M.time in
      Sh.ingest_batch ~day_end:true t ~time arr)
    (chunk 10 events);
  t

let prop_episode_invariants =
  Testutil.qtest ~count:150 "episode invariants on random streams" script_gen
    (fun script ->
      let sn = Sh.snapshot (feed_sharded 1 script) in
      let c = sn.M.s_counters in
      let opens =
        List.length (List.filter (fun p -> p.M.p_open <> None) sn.M.s_prefixes)
      in
      let per_prefix = Hashtbl.create 8 in
      List.iter
        (fun e ->
          let l = Option.value ~default:[] (Hashtbl.find_opt per_prefix e.M.e_prefix) in
          Hashtbl.replace per_prefix e.M.e_prefix (l @ [ e ]))
        sn.M.s_closed;
      let prefix_ok (p : M.prefix_state) =
        let closed = Option.value ~default:[] (Hashtbl.find_opt per_prefix p.M.p_prefix) in
        (* recurrence indices are consecutive from 1, episodes never
           overlap, and every close follows its open *)
        List.length closed = p.M.p_closed_count
        && List.for_all2
             (fun e i -> e.M.e_seq = i)
             closed
             (List.init (List.length closed) (fun i -> i + 1))
        && List.for_all (fun e -> e.M.e_ended >= e.M.e_started && e.M.e_days <= c.M.c_days) closed
        && (let rec no_overlap = function
              | a :: (b :: _ as tl) -> a.M.e_ended <= b.M.e_started && no_overlap tl
              | _ -> true
            in
            no_overlap closed)
        && match p.M.p_open with
           | Some o -> o.M.o_seq = p.M.p_closed_count + 1
           | None -> true
      in
      let sum f = List.fold_left (fun acc (_, w) -> acc + f w) 0 sn.M.s_windows in
      c.M.c_opened = c.M.c_closed + opens
      && c.M.c_closed = List.length sn.M.s_closed
      && List.for_all prefix_ok sn.M.s_prefixes
      && sum (fun w -> w.M.w_updates) = c.M.c_updates
      && sum (fun w -> w.M.w_opened) = c.M.c_opened
      && sum (fun w -> w.M.w_closed) = c.M.c_closed
      && sum (fun w -> w.M.w_alerts) = c.M.c_alerts)

let prop_jobs_invariance =
  Testutil.qtest ~count:60 "sharded ingest is jobs-invariant" script_gen
    (fun script ->
      String.equal
        (Rp.render (Sh.snapshot (feed_sharded 1 script)))
        (Rp.render (Sh.snapshot (feed_sharded 3 script))))

let prop_checkpoint_roundtrip =
  Testutil.qtest ~count:60 "checkpoint roundtrips on random streams" script_gen
    (fun script ->
      let sn = Sh.snapshot (feed_sharded 2 script) in
      let bytes = Ck.encode sn in
      let sn2 = Ck.decode bytes in
      Bytes.equal bytes (Ck.encode sn2)
      && String.equal (Rp.render sn) (Rp.render sn2))

(* Prefix ids are an in-memory handle: a monitor rebuilt from a snapshot
   re-interns in snapshot order, not first-announce order, so resuming
   from a mid-stream checkpoint must be invisible in every later output. *)
let prop_restore_midstream =
  Testutil.qtest ~count:60 "mid-stream restore is invisible"
    (QCheck2.Gen.pair script_gen script_gen)
    (fun (s1, s2) ->
      let events_at off s =
        List.mapi
          (fun i (pi, o, k) -> ev ~time:((off + i) * 1000) script_prefixes.(pi) (act o k))
          s
      in
      let evs1 = events_at 0 s1 and evs2 = events_at (List.length s1) s2 in
      let t_mid = List.length s1 * 1000 in
      let t_end = (List.length s1 + List.length s2) * 1000 in
      let run resume =
        let m = M.create M.default_config in
        List.iter (M.ingest m) evs1;
        M.settle m ~time:t_mid;
        let m = if resume then M.restore (M.snapshot m) else m in
        List.iter (M.ingest m) evs2;
        M.settle m ~time:t_end;
        Ck.encode (M.snapshot m)
      in
      Bytes.equal (run false) (run true))

let () =
  Alcotest.run "stream"
    [
      ( "monitor",
        [
          Alcotest.test_case "episode lifecycle" `Quick test_lifecycle;
          Alcotest.test_case "validation at settle points" `Quick
            test_validation_flags;
          Alcotest.test_case "recurrence" `Quick test_recurrence;
          Alcotest.test_case "origins_validated predicate" `Quick
            test_origins_validated;
          Alcotest.test_case "window aggregation" `Quick test_windows;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
      ( "archive",
        [
          Alcotest.test_case "sharding invariance" `Quick
            test_sharding_invariance;
          Alcotest.test_case "alerts spike on fault days" `Quick
            test_alerts_spike_on_fault_days;
          Alcotest.test_case "agrees with Moas_cases" `Quick
            test_archive_agrees_with_moas_cases;
          Alcotest.test_case "metrics flow" `Quick test_metrics_flow;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "empty snapshot" `Quick test_checkpoint_empty;
          Alcotest.test_case "corruption rejected" `Quick
            test_checkpoint_rejects_corruption;
          Alcotest.test_case "restore converges" `Quick
            test_checkpoint_restore_converges;
          Alcotest.test_case "restore re-credits metrics" `Quick
            test_restore_recredits_metrics;
        ] );
      ( "sources",
        [
          Alcotest.test_case "MRT batches" `Quick test_of_mrt;
          Alcotest.test_case "wire messages" `Quick test_of_wire;
          Alcotest.test_case "pull == fold" `Quick test_source_pull_equals_fold;
          Alcotest.test_case "close is final" `Quick test_source_close_is_final;
          Alcotest.test_case "ingest_source == batch loop" `Quick
            test_ingest_source_equals_batch_loop;
          Alcotest.test_case "ingest_source resume skips" `Quick
            test_ingest_source_since_skips;
          Alcotest.test_case "ingest_source closes a failed source" `Quick
            test_ingest_source_closes_on_failure;
        ] );
      ( "properties",
        [
          prop_episode_invariants;
          prop_jobs_invariance;
          prop_checkpoint_roundtrip;
          prop_restore_midstream;
        ] );
    ]
