(* Tests for the lib/classify subsystem: the ROA ground-truth oracle
   (RFC 6811 tri-state, text codec, seeded synthesis), feature
   extraction (golden vector + CSV, MOASSTOR round-trip stability),
   model sanity, and the end-to-end determinism contract of the
   evaluation harness. *)

open Net
module Roa = Baselines.Roa_registry
module Features = Classify.Features
module Model = Classify.Model
module Corpus = Classify.Corpus
module Eval = Classify.Eval
module Corr = Collect.Correlator
module Store = Collect.Store
module Stats = Mutil.Stats

let validity_testable =
  Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (Roa.validity_to_string v))
    ( = )

let p24 = Prefix.of_string "192.0.2.0/24"
let p25 = Prefix.of_string "192.0.2.0/25"
let p26 = Prefix.of_string "192.0.2.64/26"
let other = Prefix.of_string "198.51.100.0/24"
let a1 = Asn.make 65001
let a2 = Asn.make 65002

(* ---------------- ROA oracle: unit tests ---------------- *)

let test_roa_tri_state () =
  let t = Roa.add ~max_length:25 p24 a1 Roa.empty in
  let check what expected route origin =
    Alcotest.check validity_testable what expected (Roa.validate t route origin)
  in
  check "authorised origin" Roa.Valid p24 a1;
  check "more specific within max_length" Roa.Valid p25 a1;
  check "more specific beyond max_length" Roa.Invalid p26 a1;
  check "covered but wrong origin" Roa.Invalid p24 a2;
  check "uncovered prefix" Roa.Unknown other a1

let test_roa_conflict () =
  let both = Roa.add p24 a2 (Roa.add p24 a1 Roa.empty) in
  let only_a1 = Roa.add p24 a1 Roa.empty in
  let set l = Asn.Set.of_list l in
  Alcotest.check validity_testable "both origins authorised" Roa.Valid
    (Roa.classify_conflict both p24 (set [ a1; a2 ]));
  Alcotest.check validity_testable "one unauthorised origin poisons"
    Roa.Invalid
    (Roa.classify_conflict only_a1 p24 (set [ a1; a2 ]));
  Alcotest.check validity_testable "uncovered conflict stays unknown"
    Roa.Unknown
    (Roa.classify_conflict only_a1 other (set [ a1; a2 ]))

let test_roa_add_validation () =
  let rejected ml =
    match Roa.add ~max_length:ml p24 a1 Roa.empty with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "max_length below the prefix length" true (rejected 23);
  Alcotest.(check bool) "max_length beyond 32" true (rejected 33);
  Alcotest.(check bool) "max_length at the prefix length" false (rejected 24);
  let t = Roa.add p24 a1 (Roa.add p24 a1 Roa.empty) in
  Alcotest.(check int) "duplicate ROAs collapse" 1 (Roa.cardinal t)

let test_roa_text_codec () =
  let text =
    "# victim prefix\n192.0.2.0/24 65001\n\n198.51.100.0/24 65010 25  # slack\n"
  in
  (match Roa.of_string text with
  | Error m -> Alcotest.failf "hand-written registry rejected: %s" m
  | Ok t ->
    Alcotest.(check int) "two ROAs parsed" 2 (Roa.cardinal t);
    Alcotest.(check string) "canonical rendering"
      "192.0.2.0/24 65001 24\n198.51.100.0/24 65010 25\n" (Roa.to_string t));
  let rejected text =
    match Roa.of_string text with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "bad prefix rejected" true (rejected "not-a-prefix 1");
  Alcotest.(check bool) "missing origin rejected" true (rejected "192.0.2.0/24");
  Alcotest.(check bool) "bad max_length rejected" true
    (rejected "192.0.2.0/24 65001 12")

(* ---------------- ROA oracle: properties ---------------- *)

let roa_spec_gen =
  QCheck2.Gen.(
    list_size (int_range 0 12)
      (triple Testutil.prefix_gen Testutil.asn_gen (int_range 0 4)))

let registry_of_specs specs =
  List.fold_left
    (fun t (p, o, slack) ->
      let max_length = min 32 (Prefix.length p + slack) in
      Roa.add ~max_length p (Asn.make o) t)
    Roa.empty specs

let prop_validate_partition =
  Testutil.qtest ~count:300 "tri-state verdict agrees with the covering set"
    QCheck2.Gen.(triple roa_spec_gen Testutil.prefix_gen Testutil.asn_gen)
    (fun (specs, route, origin) ->
      let t = registry_of_specs specs in
      let origin = Asn.make origin in
      let cov = Roa.covering t route in
      let matches r =
        Asn.equal r.Roa.roa_origin origin
        && Prefix.length route <= r.Roa.roa_max_length
      in
      match Roa.validate t route origin with
      | Roa.Unknown -> cov = []
      | Roa.Valid -> List.exists matches cov
      | Roa.Invalid -> cov <> [] && not (List.exists matches cov))

let prop_conflict_consistency =
  Testutil.qtest ~count:300
    "conflict verdict folds the per-origin verdicts"
    QCheck2.Gen.(triple roa_spec_gen Testutil.prefix_gen Testutil.asn_set_gen)
    (fun (specs, route, origins) ->
      let t = registry_of_specs specs in
      let verdicts =
        List.map (Roa.validate t route) (Asn.Set.elements origins)
      in
      let expected =
        if List.mem Roa.Invalid verdicts then Roa.Invalid
        else if List.mem Roa.Valid verdicts then Roa.Valid
        else Roa.Unknown
      in
      Roa.classify_conflict t route origins = expected)

let prop_text_roundtrip =
  Testutil.qtest ~count:300 "of_string (to_string t) rebuilds the registry"
    roa_spec_gen
    (fun specs ->
      let t = registry_of_specs specs in
      match Roa.of_string (Roa.to_string t) with
      | Ok t' -> Roa.to_string t' = Roa.to_string t
      | Error _ -> false)

let ground_truth_gen =
  QCheck2.Gen.(
    pair
      (list_size (int_range 0 8) (pair Testutil.prefix_gen Testutil.asn_set_gen))
      (int_range 0 10_000))

let prop_synthesize_covers =
  Testutil.qtest ~count:200
    "full-coverage synthesis validates every authorised origin"
    ground_truth_gen
    (fun (truth, seed) ->
      let t = Roa.synthesize ~seed:(Int64.of_int seed) truth in
      List.for_all
        (fun (p, origins) ->
          Asn.Set.for_all (fun o -> Roa.validate t p o = Roa.Valid) origins)
        truth)

let prop_synthesize_deterministic =
  Testutil.qtest ~count:100 "synthesis is deterministic from the seed"
    ground_truth_gen
    (fun (truth, seed) ->
      let build () =
        Roa.synthesize ~coverage:0.5 ~max_length_slack:3
          ~seed:(Int64.of_int seed) truth
      in
      Roa.to_string (build ()) = Roa.to_string (build ()))

(* ---------------- features ---------------- *)

(* A hand-built episode with every feature pinned by arithmetic:
   20 s capture, starts at 3 s, ends at 10 s, 40 churn events on the
   prefix, flagged by the MOAS-list check, seen by both vantages. *)
let golden_entry =
  {
    Corr.x_prefix = p24;
    x_seq = 1;
    x_started = 3_000;
    x_ended = Some 10_000;
    x_days = 1;
    x_max_origins = 2;
    x_origins = Asn.Set.of_list [ Asn.make 64999; a1 ];
    x_clean = false;
    x_seen_by = [ "vp00"; "vp01" ];
    x_first_detect = Some 3_000;
    x_last_detect = Some 4_000;
  }

let golden_context =
  {
    Features.cx_vantages = 2;
    cx_span = 20_000;
    cx_churn = Prefix.Map.singleton p24 40;
    cx_relationships = None;
  }

let test_features_golden () =
  Alcotest.(check (array (float 1e-12)))
    "feature vector matches the hand computation"
    [| 0.15; 0.35; 1.; 0.; 1.; 1.; 2.; 2.; 2.; 0.; 0.; 0. |]
    (Features.extract golden_context golden_entry);
  Alcotest.(check int) "names and vector agree on the dimension"
    Features.dim
    (Array.length (Features.extract golden_context golden_entry))

let test_features_open_episode () =
  let still_open = { golden_entry with Corr.x_ended = None } in
  let v = Features.extract golden_context still_open in
  Alcotest.(check (float 1e-12)) "open episodes extend to the capture end"
    0.85 v.(1);
  Alcotest.(check (float 1e-12)) "still_open is set" 1.0 v.(11)

let test_features_csv_golden () =
  let ex =
    {
      Corpus.ex_arm = Collect.Scenario.Baseline;
      ex_run = 0;
      ex_entry = golden_entry;
      ex_features = Features.extract golden_context golden_entry;
      ex_label = true;
      ex_validity = Roa.Invalid;
      ex_moas_flagged = true;
    }
  in
  let corpus = { Corpus.c_examples = [ ex ]; c_runs = 1 } in
  let expected =
    "arm,run,prefix,seq,label,validity,moas_flagged,start_frac,duration_frac,\
     days,bucket,recurrence,visibility_frac,max_origins,origins,churn_rate,\
     relation,list_clean,still_open\n\
     baseline,0,192.0.2.0/24,1,1,invalid,1,0.150000,0.350000,1.000000,\
     0.000000,1.000000,1.000000,2.000000,2.000000,2.000000,0.000000,\
     0.000000,0.000000\n"
  in
  Alcotest.(check string) "golden CSV" expected (Eval.features_csv corpus)

(* round-trip stability: for a fixed context the feature vectors of a
   captured correlation survive the MOASSTOR encode/decode byte-for-byte *)

let topo25 = lazy (Topology.Paper_topologies.topology_25 ())
let mesh_config =
  { Stream.Monitor.default_config with Stream.Monitor.window = 10_000 }

let prop_features_store_roundtrip =
  Testutil.qtest ~count:5 "features survive the MOASSTOR round-trip"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let c =
        Collect.Scenario.capture ~seed:(Int64.of_int seed) ~vantages:3
          (Lazy.force topo25)
      in
      let corr =
        Corr.of_result
          (Collect.Mesh.run ~jobs:1 mesh_config c.Collect.Scenario.s_streams)
      in
      let cx = Features.of_scenario c in
      let store = Store.of_correlation corr in
      let store' = Store.decode (Store.encode store) in
      let features s = List.map (Features.extract cx) (Store.entries s) in
      features store <> [] && features store = features store')

(* ---------------- models ---------------- *)

let verdict_testable =
  Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (Model.verdict_to_string v))
    ( = )

let test_verdict_bands () =
  let check what expected score =
    Alcotest.check verdict_testable what expected (Model.verdict_of_score score)
  in
  check "low score is benign" Model.Benign 0.1;
  check "lower band edge" Model.Suspicious 0.3;
  check "mid score is suspicious" Model.Suspicious 0.5;
  check "upper band edge" Model.Invalid 0.7;
  check "high score is invalid" Model.Invalid 0.95;
  Alcotest.(check bool) "flag at the threshold" true (Model.flagged 0.5);
  Alcotest.(check bool) "no flag below it" false (Model.flagged 0.499)

let test_scaler_constant_feature () =
  let sc = Model.fit_scaler ~dim:2 [ [| 5.; 1. |]; [| 5.; 3. |] ] in
  let t = Model.transform sc [| 5.; 2. |] in
  Alcotest.(check (float 1e-9)) "constant feature scales to zero" 0.0 t.(0);
  Alcotest.(check (float 1e-9)) "mean input scales to zero" 0.0 t.(1)

(* a linearly separable toy set: x <= 0.9 negative, x >= 1.5 positive *)
let separable =
  List.concat
    (List.init 10 (fun i ->
         let x = float_of_int i /. 10. in
         [ ([| x |], false); ([| x +. 1.5 |], true) ]))

let test_logistic_separates () =
  let m = Model.train_logistic ~dim:1 separable in
  Alcotest.(check bool) "positive side flagged" true
    (Model.flagged (Model.predict m [| 2.0 |]));
  Alcotest.(check bool) "negative side clean" false
    (Model.flagged (Model.predict m [| 0.2 |]));
  let rows = Model.weights m in
  Alcotest.(check int) "one weight per feature plus the bias"
    2 (Array.length rows);
  Alcotest.(check string) "bias row is labelled" "(bias)" (fst rows.(1))

let test_stumps_separate () =
  let m = Model.train_stumps ~dim:1 separable in
  Alcotest.(check bool) "at least one stump kept" true (Model.stumps_size m >= 1);
  Alcotest.(check bool) "positive side flagged" true
    (Model.flagged (Model.stumps_predict m [| 2.0 |]));
  Alcotest.(check bool) "negative side clean" false
    (Model.flagged (Model.stumps_predict m [| 0.2 |]))

let test_empty_training_rejected () =
  let rejects f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "logistic" true
    (rejects (fun () -> Model.train_logistic ~dim:1 []));
  Alcotest.(check bool) "stumps" true
    (rejects (fun () -> Model.train_stumps ~dim:1 []));
  Alcotest.(check bool) "dimension mismatch" true
    (rejects (fun () -> Model.train_logistic ~dim:2 [ ([| 1.0 |], true) ]))

let test_training_deterministic () =
  let train () = Model.train_logistic ~dim:1 separable in
  Alcotest.(check bool) "weights identical across retrains" true
    (Model.weights (train ()) = Model.weights (train ()))

(* ---------------- end-to-end evaluation ---------------- *)

let smoke_eval jobs = Eval.evaluate ~jobs ~smoke:true ~seed:0xC1A55L ()
let smoke = lazy (smoke_eval 1)

let test_eval_jobs_determinism () =
  let a = Lazy.force smoke and b = smoke_eval 4 in
  Alcotest.(check string) "report byte-identical across jobs"
    (Eval.render a.Eval.ev_report)
    (Eval.render b.Eval.ev_report);
  Alcotest.(check string) "feature CSV byte-identical across jobs"
    (Eval.features_csv a.Eval.ev_corpus)
    (Eval.features_csv b.Eval.ev_corpus)

let test_eval_split_covers_arms () =
  let corpus = (Lazy.force smoke).Eval.ev_corpus in
  let train, eval = Corpus.split corpus in
  let arms exs =
    List.sort_uniq compare (List.map (fun ex -> ex.Corpus.ex_arm) exs)
  in
  Alcotest.(check int) "train half sees every arm"
    (List.length Collect.Scenario.all_arms)
    (List.length (arms train));
  Alcotest.(check int) "eval half sees every arm"
    (List.length Collect.Scenario.all_arms)
    (List.length (arms eval));
  Alcotest.(check bool) "both halves carry positives" true
    (Corpus.positives train > 0 && Corpus.positives eval > 0)

let test_classifier_beats_strawman () =
  (* the acceptance criterion: on the attack arm the learned model must
     beat always-flag on precision without giving up recall *)
  let r = (Lazy.force smoke).Eval.ev_report in
  let arm =
    List.find
      (fun ar -> ar.Eval.ar_arm = Collect.Scenario.Baseline)
      r.Eval.r_arms
  in
  let conf name = List.assoc name arm.Eval.ar_detectors in
  let logistic = conf "logistic" and strawman = conf "always-flag" in
  Alcotest.(check bool) "strictly better precision" true
    (Stats.precision logistic > Stats.precision strawman);
  Alcotest.(check bool) "no recall given up" true
    (Stats.recall logistic >= Stats.recall strawman)

let test_eval_report_shape () =
  let r = (Lazy.force smoke).Eval.ev_report in
  Testutil.check_contains ~what:"report" (Eval.render r)
    "== episode classifier ==";
  Alcotest.(check int) "one arm report per arm"
    (List.length Collect.Scenario.all_arms)
    (List.length r.Eval.r_arms);
  Alcotest.(check (list string)) "fixed detector order"
    [ "logistic"; "stumps"; "moas-list"; "always-flag" ]
    (List.map fst r.Eval.r_overall);
  Alcotest.(check int) "verdict bands partition the eval half"
    r.Eval.r_eval
    (List.fold_left (fun acc (_, n) -> acc + n) 0 r.Eval.r_verdicts)

let () =
  Alcotest.run "classify"
    [
      ( "roa oracle",
        [
          Alcotest.test_case "RFC 6811 tri-state" `Quick test_roa_tri_state;
          Alcotest.test_case "conflict verdicts" `Quick test_roa_conflict;
          Alcotest.test_case "add validation" `Quick test_roa_add_validation;
          Alcotest.test_case "text codec" `Quick test_roa_text_codec;
        ] );
      ( "roa properties",
        [
          prop_validate_partition;
          prop_conflict_consistency;
          prop_text_roundtrip;
          prop_synthesize_covers;
          prop_synthesize_deterministic;
        ] );
      ( "features",
        [
          Alcotest.test_case "golden vector" `Quick test_features_golden;
          Alcotest.test_case "open episode" `Quick test_features_open_episode;
          Alcotest.test_case "golden CSV" `Quick test_features_csv_golden;
          prop_features_store_roundtrip;
        ] );
      ( "models",
        [
          Alcotest.test_case "verdict bands" `Quick test_verdict_bands;
          Alcotest.test_case "scaler" `Quick test_scaler_constant_feature;
          Alcotest.test_case "logistic separates" `Quick test_logistic_separates;
          Alcotest.test_case "stumps separate" `Quick test_stumps_separate;
          Alcotest.test_case "empty training rejected" `Quick
            test_empty_training_rejected;
          Alcotest.test_case "training is deterministic" `Quick
            test_training_deterministic;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "jobs determinism" `Quick test_eval_jobs_determinism;
          Alcotest.test_case "split covers every arm" `Quick
            test_eval_split_covers_arms;
          Alcotest.test_case "beats the always-flag strawman" `Quick
            test_classifier_beats_strawman;
          Alcotest.test_case "report shape" `Quick test_eval_report_shape;
        ] );
    ]
