(* Tests for route aggregation (paper footnote 1) and its interplay with
   MOAS checking: an aggregate's AS_SET stands in for the implicit MOAS
   list of its component origins. *)

open Net
module Router = Bgp.Router
module Network = Bgp.Network

let summary = Prefix.of_string "10.0.0.0/8"
let child_a = Prefix.of_string "10.1.0.0/16"
let child_b = Prefix.of_string "10.2.0.0/16"

let wire router =
  let sent = ref [] in
  Router.set_transport router
    ~send:(fun ~peer update -> sent := (peer, update) :: !sent)
    ~schedule:(fun ~delay:_ _ -> ());
  fun () ->
    let out = List.rev !sent in
    sent := [];
    out

let announce ~from ~prefix path =
  Bgp.Update.announce ~sender:(Asn.make from) (Testutil.route ~prefix ~from path)

let test_aggregate_appears_with_first_child () =
  let router = Router.create (Asn.make 1) in
  Router.add_peer router (Asn.make 9);
  let drain = wire router in
  Router.configure_aggregate router ~now:0.0 summary;
  Alcotest.(check bool) "no aggregate without children" true
    (Router.best router summary = None);
  Router.handle_update router ~now:1.0 (announce ~from:2 ~prefix:child_a [ 2; 5 ]);
  (match Router.best router summary with
  | Some aggregate ->
    Alcotest.check Testutil.asn_set_testable "single child: child's origins"
      (Asn.Set.singleton 5)
      (Bgp.As_path.origin_candidates aggregate.Bgp.Route.as_path)
  | None -> Alcotest.fail "aggregate expected");
  (* the aggregate is advertised alongside the child *)
  let announced_prefixes =
    List.filter_map
      (fun (_, u) ->
        match u.Bgp.Update.payload with
        | Bgp.Update.Announce r -> Some (Prefix.to_string r.Bgp.Route.prefix)
        | Bgp.Update.Withdraw _ -> None)
      (drain ())
  in
  Alcotest.(check (list string)) "child and aggregate announced"
    [ "10.0.0.0/8"; "10.1.0.0/16" ]
    (List.sort compare announced_prefixes)

let test_aggregate_combines_origins () =
  let router = Router.create (Asn.make 1) in
  Router.add_peer router (Asn.make 9);
  let (_ : unit -> (Asn.t * Bgp.Update.t) list) = wire router in
  Router.configure_aggregate router ~now:0.0 summary;
  Router.handle_update router ~now:1.0 (announce ~from:2 ~prefix:child_a [ 2; 5 ]);
  Router.handle_update router ~now:2.0 (announce ~from:2 ~prefix:child_b [ 2; 7 ]);
  match Router.best router summary with
  | Some aggregate ->
    Alcotest.check Testutil.asn_set_testable "AS_SET of both origins"
      (Asn.Set.of_list [ 5; 7 ])
      (Bgp.As_path.origin_candidates aggregate.Bgp.Route.as_path);
    (* the common head (AS 2) survives as a sequence *)
    Alcotest.(check bool) "common head kept" true
      (Bgp.As_path.contains aggregate.Bgp.Route.as_path (Asn.make 2))
  | None -> Alcotest.fail "aggregate expected"

let test_aggregate_disappears_with_last_child () =
  let router = Router.create (Asn.make 1) in
  Router.add_peer router (Asn.make 9);
  let drain = wire router in
  Router.configure_aggregate router ~now:0.0 summary;
  Router.handle_update router ~now:1.0 (announce ~from:2 ~prefix:child_a [ 2; 5 ]);
  ignore (drain ());
  Router.handle_update router ~now:2.0
    (Bgp.Update.withdraw ~sender:(Asn.make 2) child_a);
  Alcotest.(check bool) "aggregate gone" true (Router.best router summary = None);
  let withdrawn =
    List.filter
      (fun (_, u) ->
        match u.Bgp.Update.payload with
        | Bgp.Update.Withdraw _ -> true
        | Bgp.Update.Announce _ -> false)
      (drain ())
  in
  Alcotest.(check int) "child and aggregate withdrawn" 2 (List.length withdrawn)

let test_remove_aggregate () =
  let router = Router.create (Asn.make 1) in
  Router.add_peer router (Asn.make 9);
  let (_ : unit -> (Asn.t * Bgp.Update.t) list) = wire router in
  Router.configure_aggregate router ~now:0.0 summary;
  Router.handle_update router ~now:1.0 (announce ~from:2 ~prefix:child_a [ 2; 5 ]);
  Router.remove_aggregate router ~now:2.0 summary;
  Alcotest.(check bool) "rule removal drops the aggregate" true
    (Router.best router summary = None);
  Alcotest.(check bool) "child untouched" true
    (Router.best router child_a <> None)

let test_aggregate_moas_list_merged () =
  (* children carrying MOAS lists: the aggregate's communities merge them *)
  let router = Router.create (Asn.make 1) in
  Router.add_peer router (Asn.make 9);
  let (_ : unit -> (Asn.t * Bgp.Update.t) list) = wire router in
  Router.configure_aggregate router ~now:0.0 summary;
  let with_list prefix origin =
    Bgp.Update.announce ~sender:(Asn.make 2)
      (Testutil.route ~prefix
         ~communities:(Testutil.moas_communities [ origin; 100 ])
         ~from:2 [ 2; origin ])
  in
  Router.handle_update router ~now:1.0 (with_list child_a 5);
  Router.handle_update router ~now:2.0 (with_list child_b 7);
  match Router.best router summary with
  | Some aggregate ->
    Alcotest.check Testutil.asn_set_testable "lists merged"
      (Asn.Set.of_list [ 5; 7; 100 ])
      (Option.get (Moas.Moas_list.decode aggregate.Bgp.Route.communities))
  | None -> Alcotest.fail "aggregate expected"

let test_detector_accepts_consistent_aggregates () =
  (* two bare aggregated routes with the same AS_SET: implicit lists agree *)
  let d = Moas.Detector.create ~self:(Asn.make 99) () in
  let v = Moas.Detector.validator d in
  let aggregated from =
    {
      Bgp.Route.prefix = summary;
      as_path =
        [ Bgp.As_path.Seq [ from ]; Bgp.As_path.Set (Asn.Set.of_list [ 5; 7 ]) ];
      origin = Bgp.Route.Igp;
      learned_from = Asn.make from;
      local_pref = 100;
      communities = Bgp.Community.Set.empty;
    }
  in
  let kept = v ~now:0.0 ~prefix:summary [ aggregated 2; aggregated 3 ] in
  Alcotest.(check int) "both kept" 2 (List.length kept);
  Alcotest.(check int) "no alarm on consistent AS_SETs" 0 (Moas.Detector.alarm_count d)

let test_detector_flags_divergent_aggregates () =
  let d = Moas.Detector.create ~self:(Asn.make 99) () in
  let v = Moas.Detector.validator d in
  let aggregated from origins =
    {
      Bgp.Route.prefix = summary;
      as_path =
        [ Bgp.As_path.Seq [ from ]; Bgp.As_path.Set (Asn.Set.of_list origins) ];
      origin = Bgp.Route.Igp;
      learned_from = Asn.make from;
      local_pref = 100;
      communities = Bgp.Community.Set.empty;
    }
  in
  ignore (v ~now:0.0 ~prefix:summary [ aggregated 2 [ 5; 7 ]; aggregated 3 [ 5; 666 ] ]);
  Alcotest.(check int) "divergent AS_SETs alarm" 1 (Moas.Detector.alarm_count d)

let test_aggregation_in_network () =
  (* AS 3 aggregates its customers' space and the summary propagates *)
  let g = Topology.As_graph.of_edges [ (1, 3); (2, 3); (3, 4) ] in
  let net = Network.make g in
  Router.configure_aggregate (Network.router net 3) ~now:0.0 summary;
  Network.originate ~at:1.0 net 1 child_a;
  Network.originate ~at:1.0 net 2 child_b;
  Alcotest.(check bool) "converged" true (Network.run net = Sim.Engine.Quiescent);
  match Network.best_route net 4 summary with
  | Some route ->
    Alcotest.check Testutil.asn_set_testable "AS4 sees the aggregate's origins"
      (Asn.Set.of_list [ 1; 2 ])
      (Bgp.As_path.origin_candidates route.Bgp.Route.as_path)
  | None -> Alcotest.fail "AS4 should hold the aggregate"

let () =
  Alcotest.run "aggregation"
    [
      ( "router",
        [
          Alcotest.test_case "appears with first child" `Quick
            test_aggregate_appears_with_first_child;
          Alcotest.test_case "combines origins" `Quick test_aggregate_combines_origins;
          Alcotest.test_case "disappears with last child" `Quick
            test_aggregate_disappears_with_last_child;
          Alcotest.test_case "rule removal" `Quick test_remove_aggregate;
          Alcotest.test_case "MOAS lists merged" `Quick test_aggregate_moas_list_merged;
        ] );
      ( "detector interplay",
        [
          Alcotest.test_case "consistent AS_SETs" `Quick
            test_detector_accepts_consistent_aggregates;
          Alcotest.test_case "divergent AS_SETs" `Quick
            test_detector_flags_divergent_aggregates;
        ] );
      ( "network",
        [ Alcotest.test_case "aggregate propagates" `Quick test_aggregation_in_network ] );
    ]
