(* Tests for lib/collect: vantage recording off the network tap, mesh
   merge/dedup determinism, cross-vantage correlation, the episode store's
   binary round-trip and queries, and the canonical scenario's
   partial-visibility behaviour under a lib/faults partition. *)

open Net
module M = Stream.Monitor
module Src = Stream.Source
module Ck = Stream.Checkpoint
module V = Collect.Vantage
module Mesh = Collect.Mesh
module Corr = Collect.Correlator
module Store = Collect.Store

let p1 = Prefix.of_string "192.0.2.0/24"
let p2 = Prefix.of_string "198.51.100.0/24"
let p2_sub = Prefix.of_string "198.51.100.128/25"

let ev ?(peer = 99) ~time prefix action = { M.time; peer = Asn.make peer; prefix; action }

let ann ?list o =
  M.Announce { origin = Asn.make o; moas_list = Option.map Asn.Set.of_list list }

let wd o = M.Withdraw { origin = Asn.make o }

let config = { M.default_config with M.window = 10_000 }

let encode_snapshot = Ck.encode

(* ---------------- vantage recording ---------------- *)

let test_tap_records_origin_events () =
  let network = Bgp.Network.make (Testutil.small_graph ()) in
  let specs = [ V.spec ~name:"v0" [ Asn.make 2; Asn.make 5 ] ] in
  let v =
    match V.attach network specs with
    | [ v ] -> v
    | _ -> Alcotest.fail "expected one vantage"
  in
  Bgp.Network.originate network (Asn.make 6) p1
    ~communities:(Moas.Moas_list.encode (Asn.Set.singleton (Asn.make 6)));
  ignore (Bgp.Network.run network);
  (* both feeds converge on origin 6: the refcounted view emits exactly
     one announce, whichever feed reported first *)
  Alcotest.(check int) "one origin-level event" 1 (V.event_count v);
  (match (V.events v).(0) with
  | { M.action = M.Announce { origin; moas_list }; prefix; _ } ->
    Alcotest.check Testutil.prefix_testable "prefix" p1 prefix;
    Alcotest.(check int) "origin" 6 (Asn.to_int origin);
    Alcotest.(check (option Testutil.asn_set_testable))
      "MOAS list decoded from communities"
      (Some (Asn.Set.singleton (Asn.make 6)))
      moas_list
  | _ -> Alcotest.fail "expected an announce");
  Alcotest.(check string) "name" "v0" (V.name v)

let test_attach_validation () =
  let network = Bgp.Network.make (Testutil.small_graph ()) in
  Alcotest.check_raises "duplicate vantage names"
    (Invalid_argument "Vantage.attach: duplicate vantage dup")
    (fun () ->
      ignore
        (V.attach network
           [ V.spec ~name:"dup" [ Asn.make 1 ]; V.spec ~name:"dup" [ Asn.make 2 ] ]));
  Alcotest.check_raises "peer outside the topology"
    (Invalid_argument "Vantage.attach: AS77 is not in the topology")
    (fun () -> ignore (V.attach network [ V.spec ~name:"v" [ Asn.make 77 ] ]))

let test_dropped_counter () =
  let metrics = Obs.Registry.create () in
  let network = Bgp.Network.make (Testutil.small_graph ()) in
  let _ = V.attach ~metrics network [ V.spec ~name:"v0" [ Asn.make 2 ] ] in
  Bgp.Network.originate network (Asn.make 6) p1;
  ignore (Bgp.Network.run network);
  let dump = Obs.Registry.to_json_lines metrics in
  Testutil.check_contains ~what:"metrics dump" dump "collect_updates_dropped";
  Testutil.check_contains ~what:"metrics dump" dump "collect_events_total"

let test_millis () =
  Alcotest.(check int) "whole seconds" 2000 (V.millis 2.0);
  Alcotest.(check int) "sub-millisecond rounds" 2 (V.millis 0.0015)

(* ---------------- mesh merge ---------------- *)

let test_merge_dedup () =
  let events = [| ev ~time:0 p1 (ann 10); ev ~time:5 p1 (ann 20) |] in
  let merged, dups = Mesh.merge_streams [ ("b", events); ("a", events) ] in
  Alcotest.(check int) "union is deduplicated" 2 (Array.length merged);
  Alcotest.(check int) "every double observation counted" 2 dups;
  Array.iter
    (fun t -> Alcotest.(check string) "first observer by name" "a" t.Mesh.tag)
    merged

let test_canonical_order () =
  let a = ev ~time:7 p1 (ann 10) and w = ev ~time:7 p1 (wd 20) in
  Alcotest.(check bool) "withdrawals sort before announcements" true
    (Mesh.compare_event w a < 0)

let test_run_validation () =
  Alcotest.check_raises "empty mesh" (Invalid_argument "Mesh.run: no vantages")
    (fun () -> ignore (Mesh.run config []));
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Mesh.run: duplicate vantage v") (fun () ->
      ignore (Mesh.run config [ ("v", [||]); ("v", [||]) ]))

let test_flagged_while_open () =
  (* the conflict closes before the end of the stream: per-step settling
     must still have validated (and flagged) it while it was open *)
  let events =
    [|
      ev ~time:0 p1 (ann ~list:[ 10 ] 10);
      ev ~time:10 p1 (ann 20);
      ev ~time:20 p1 (wd 20);
    |]
  in
  let r = Mesh.run config [ ("v0", events) ] in
  match r.Mesh.r_merged.M.s_closed with
  | [ e ] -> Alcotest.(check bool) "episode flagged while open" false e.M.e_clean
  | eps -> Alcotest.failf "expected 1 closed episode, got %d" (List.length eps)

let test_duplicates_counter_lazy () =
  let metrics = Obs.Registry.create () in
  let events = [| ev ~time:0 p1 (ann 10) |] in
  ignore (Mesh.run ~metrics config [ ("a", events) ]);
  let dump = Obs.Registry.to_json_lines metrics in
  Alcotest.(check bool) "no duplicates, no sample" false
    (Testutil.contains dump "stream_merge_duplicates");
  ignore (Mesh.run ~metrics config [ ("a", events); ("b", events) ]);
  let dump = Obs.Registry.to_json_lines metrics in
  Testutil.check_contains ~what:"metrics dump" dump "stream_merge_duplicates"

(* ---------------- qcheck properties ---------------- *)

let script_prefixes =
  [| p1; p2; p2_sub; Prefix.of_string "203.0.113.0/24" |]

let script_gen =
  QCheck2.Gen.(
    list_size (int_range 0 120)
      (triple (int_range 0 3) (int_range 1 6) (int_range 0 3)))

let act o = function
  | 0 -> wd o
  | 1 -> ann o
  | 2 -> ann ~list:[ 1; 2; 3; 4; 5; 6 ] o
  | _ -> ann ~list:[ o ] o

let script_events script =
  Array.of_list
    (List.mapi (fun i (pi, o, k) -> ev ~time:(i * 10) script_prefixes.(pi) (act o k)) script)

let script_batches script =
  let events = script_events script in
  let time = if Array.length events = 0 then 0 else events.(Array.length events - 1).M.time in
  [| { Src.time; day = None; events } |]

let replay_streams ?(coverage = 0.6) ?(vantages = 3) script =
  V.replay ~coverage ~vantages ~seed:0xC0FFEEL (script_batches script)

let prop_merged_equals_global =
  Testutil.qtest ~count:100
    "mesh merged view == single monitor over the global stream" script_gen
    (fun script ->
      (* every event is forced to at least one vantage, so the deduped
         union is exactly the input stream *)
      let mesh = Mesh.run config (replay_streams script) in
      let solo = Mesh.run config [ ("all", script_events script) ] in
      encode_snapshot mesh.Mesh.r_merged = encode_snapshot solo.Mesh.r_merged)

let prop_full_coverage_vantages_agree =
  Testutil.qtest ~count:100
    "full coverage: every vantage equals the merged view" script_gen
    (fun script ->
      let r = Mesh.run config (replay_streams ~coverage:1.0 script) in
      let merged = encode_snapshot r.Mesh.r_merged in
      List.for_all
        (fun (_, snap) -> encode_snapshot snap = merged)
        r.Mesh.r_per_vantage)

let prop_jobs_and_order_invariance =
  Testutil.qtest ~count:60 "jobs count and vantage order are invisible"
    script_gen (fun script ->
      let streams = replay_streams script in
      let a = Mesh.run ~jobs:1 config streams in
      let b = Mesh.run ~jobs:8 config (List.rev streams) in
      encode_snapshot a.Mesh.r_merged = encode_snapshot b.Mesh.r_merged
      && List.for_all2
           (fun (na, sa) (nb, sb) ->
             na = nb && encode_snapshot sa = encode_snapshot sb)
           a.Mesh.r_per_vantage b.Mesh.r_per_vantage
      && a.Mesh.r_duplicates = b.Mesh.r_duplicates)

(* The pre-heap reference merge: global sort by (event, tag) and a fold
   that collapses runs of equal events, keeping the name-order first
   observer.  The k-way heap merge must reproduce it exactly — same
   output order, same tags, same duplicate count. *)
let reference_merge streams =
  let all =
    List.concat_map
      (fun (name, events) ->
        Array.to_list (Array.map (fun event -> (name, event)) events))
      streams
  in
  let sorted =
    List.sort
      (fun (ta, a) (tb, b) ->
        let c = Mesh.compare_event a b in
        if c <> 0 then c else String.compare ta tb)
      all
  in
  let merged, dups =
    List.fold_left
      (fun (acc, dups) (tag, event) ->
        match acc with
        | (_, prev) :: _ when Mesh.compare_event prev event = 0 ->
          (acc, dups + 1)
        | _ -> ((tag, event) :: acc, dups))
      ([], 0) sorted
  in
  (List.rev merged, dups)

(* per-event (vantage, action kind) + (prefix, origin, time): times are
   drawn from a small range and not sorted, so the streams arrive
   unsorted and full of cross- and intra-vantage duplicates *)
let merge_script_gen =
  QCheck2.Gen.(
    list_size (int_range 0 120)
      (pair
         (pair (int_range 0 2) (int_range 0 3))
         (triple (int_range 0 3) (int_range 1 6) (int_range 0 30))))

let prop_heap_merge_matches_reference =
  Testutil.qtest ~count:200 "heap merge equals the sort-based reference"
    merge_script_gen (fun script ->
      let accs = Array.make 3 [] in
      List.iter
        (fun ((v, k), (pi, o, time)) ->
          accs.(v) <-
            ev ~time:(time * 10) script_prefixes.(pi) (act o k) :: accs.(v))
        script;
      let streams =
        List.init 3 (fun v ->
            (Printf.sprintf "v%d" v, Array.of_list (List.rev accs.(v))))
      in
      let merged, dups = Mesh.merge_streams streams in
      let ref_merged, ref_dups = reference_merge streams in
      dups = ref_dups
      && Array.length merged = List.length ref_merged
      && List.for_all2
           (fun t (tag, event) ->
             String.equal t.Mesh.tag tag
             && Mesh.compare_event t.Mesh.event event = 0)
           (Array.to_list merged) ref_merged)

(* ---------------- store ---------------- *)

let entry ?(seq = 1) ?ended ?(days = 1) ?(max_origins = 2) ?(clean = true)
    ?(seen = [ "vp00" ]) ?first ?last ~prefix ~origins ~started () =
  {
    Corr.x_prefix = prefix;
    x_seq = seq;
    x_started = started;
    x_ended = ended;
    x_days = days;
    x_max_origins = max_origins;
    x_origins = Asn.Set.of_list (List.map Asn.make origins);
    x_clean = clean;
    x_seen_by = seen;
    x_first_detect = first;
    x_last_detect = last;
  }

let sample_store () =
  Store.of_correlation
    {
      Corr.c_vantages = [ "vp00"; "vp01"; "vp02" ];
      c_entries =
        [
          entry ~prefix:p1 ~origins:[ 10; 20 ] ~started:100 ~ended:900
            ~clean:false
            ~seen:[ "vp00"; "vp02" ]
            ~first:120 ~last:300 ();
          entry ~prefix:p2 ~origins:[ 30; 40 ] ~started:50
            ~seen:[ "vp00"; "vp01"; "vp02" ]
            ~first:50 ~last:60 ();
          entry ~prefix:p2_sub ~origins:[ 30; 99 ] ~started:400 ~ended:500
            ~seen:[] ();
        ];
    }

let test_store_roundtrip () =
  let s = sample_store () in
  let bytes = Store.encode s in
  let s' = Store.decode bytes in
  Alcotest.(check int) "count survives" (Store.count s) (Store.count s');
  Alcotest.(check (list string)) "roster survives" (Store.vantages s)
    (Store.vantages s');
  Alcotest.(check bool) "re-encode is byte-identical" true
    (Store.encode s' = bytes);
  Alcotest.(check string) "render survives" (Store.render s) (Store.render s')

let test_store_rejects_corruption () =
  let bytes = Store.encode (sample_store ()) in
  let expect_corrupt what data =
    match Store.decode data with
    | _ -> Alcotest.failf "%s was accepted" what
    | exception Store.Corrupt _ -> ()
  in
  (* truncation at every cut point *)
  for n = 0 to Bytes.length bytes - 1 do
    expect_corrupt (Printf.sprintf "truncation to %d octets" n)
      (Bytes.sub bytes 0 n)
  done;
  (* trailing garbage *)
  expect_corrupt "trailing octet" (Bytes.cat bytes (Bytes.make 1 '\x00'));
  (* bad magic *)
  let bad = Bytes.copy bytes in
  Bytes.set bad 0 'X';
  expect_corrupt "bad magic" bad;
  (* version bump *)
  let bad = Bytes.copy bytes in
  Bytes.set bad 8 '\x02';
  expect_corrupt "version mismatch" bad

let test_store_queries () =
  let s = sample_store () in
  let q qstr =
    match Store.parse_query qstr with
    | Ok q -> List.map (fun e -> Prefix.to_string e.Corr.x_prefix) (Store.query s q)
    | Error msg -> Alcotest.failf "query %S rejected: %s" qstr msg
  in
  Alcotest.(check (list string)) "exact prefix"
    [ "198.51.100.0/24" ]
    (q "prefix=198.51.100.0/24");
  Alcotest.(check (list string)) "covered includes more-specifics"
    [ "198.51.100.0/24"; "198.51.100.128/25" ]
    (q "prefix=198.51.100.0/24,covered=true");
  Alcotest.(check (list string)) "origin filter"
    [ "192.0.2.0/24" ] (q "origin=20");
  Alcotest.(check (list string)) "time range excludes later episodes"
    [ "192.0.2.0/24"; "198.51.100.0/24" ]
    (q "since=60,until=150");
  Alcotest.(check (list string)) "open episodes extend to the end of time"
    [ "198.51.100.0/24" ] (q "since=5000");
  Alcotest.(check (list string)) "visibility floor"
    [ "198.51.100.0/24" ] (q "min_visibility=3");
  Alcotest.(check int) "empty query matches all" 3 (List.length (q ""));
  (* every sample episode lasts a single day, so they are all short *)
  Alcotest.(check int) "bucket=short matches the day-long episodes" 3
    (List.length (q "bucket=short"));
  Alcotest.(check (list string)) "bucket=long matches none" []
    (q "bucket=long");
  match Store.parse_query "bucket=medium" with
  | Error m -> Alcotest.failf "bucket=medium rejected: %s" m
  | Ok qm ->
    Alcotest.(check string) "printer restores the bucket clause"
      "bucket=medium"
      (Collect.Query.to_string qm)

let test_store_parse_errors () =
  let rejected s =
    match Store.parse_query s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unknown key" true (rejected "frobnicate=1");
  Alcotest.(check bool) "missing value" true (rejected "prefix");
  Alcotest.(check bool) "bad integer" true (rejected "since=soon");
  Alcotest.(check bool) "bad prefix" true (rejected "prefix=999.0.0.0/44");
  Alcotest.(check bool) "bad bucket" true (rejected "bucket=forever")

(* ---------------- scenario: partial visibility under partition -------- *)

let topo = lazy (Topology.Paper_topologies.topology_25 ())

let baseline =
  lazy (Collect.Scenario.capture ~seed:1L ~vantages:3 (Lazy.force topo))

let partitioned =
  lazy
    (Collect.Scenario.capture ~arm:Collect.Scenario.Partitioned ~seed:1L
       ~vantages:3 (Lazy.force topo))

let correlate capture =
  Corr.of_result (Mesh.run config capture.Collect.Scenario.s_streams)

let find_entries corr prefix =
  List.filter
    (fun e -> Prefix.compare e.Corr.x_prefix prefix = 0)
    corr.Corr.c_entries

let test_scenario_baseline () =
  let c = Lazy.force baseline in
  Alcotest.(check int) "three vantages" 3 (List.length c.Collect.Scenario.s_streams);
  let corr = correlate c in
  let attacked = find_entries corr c.Collect.Scenario.s_attacked in
  Alcotest.(check bool) "invalid-origin conflict observed" true (attacked <> []);
  List.iter
    (fun e ->
      Alcotest.(check bool) "flagged by the MOAS-list check" false e.Corr.x_clean;
      Alcotest.(check bool) "visible somewhere" true (Corr.visibility e >= 1))
    attacked;
  (match find_entries corr c.Collect.Scenario.s_multihomed with
  | [] -> Alcotest.fail "multihomed MOAS not observed"
  | entries ->
    List.iter
      (fun e ->
        Alcotest.(check bool) "clean legitimate MOAS" true e.Corr.x_clean;
        Alcotest.(check int) "seen by the whole mesh" 3 (Corr.visibility e))
      entries);
  Alcotest.(check (list string)) "quiet prefix never conflicts" []
    (List.map (fun e -> Prefix.to_string e.Corr.x_prefix)
       (find_entries corr c.Collect.Scenario.s_quiet))

let test_scenario_partition () =
  let healthy = Lazy.force baseline and cut = Lazy.force partitioned in
  Alcotest.(check (option string)) "first vantage is isolated" (Some "vp00")
    cut.Collect.Scenario.s_isolated;
  Alcotest.(check bool) "the partition actually fired" true
    (cut.Collect.Scenario.s_faults_injected > 0);
  let mesh c = Mesh.run config c.Collect.Scenario.s_streams in
  let view r = encode_snapshot (List.assoc "vp00" r.Mesh.r_per_vantage) in
  Alcotest.(check bool) "isolated vantage's view diverges" true
    (view (mesh healthy) <> view (mesh cut));
  let corr = correlate cut in
  let attacked = find_entries corr cut.Collect.Scenario.s_attacked in
  Alcotest.(check bool) "merged correlator still flags the conflict" true
    (List.exists (fun e -> not e.Corr.x_clean) attacked);
  Alcotest.(check bool) "visibility is partial, not zero" true
    (List.exists
       (fun e -> Corr.visibility e >= 1 && Corr.visibility e < 3)
       attacked)

let fault_churn =
  lazy
    (Collect.Scenario.capture ~arm:Collect.Scenario.Fault_churn ~seed:1L
       ~vantages:3 (Lazy.force topo))

let test_scenario_fault_churn () =
  let c = Lazy.force fault_churn in
  Alcotest.(check bool) "the flaps actually fired" true
    (c.Collect.Scenario.s_faults_injected > 0);
  let corr = correlate c in
  Alcotest.(check (list string)) "no attacker, so no conflict there" []
    (List.map
       (fun e -> Prefix.to_string e.Corr.x_prefix)
       (find_entries corr c.Collect.Scenario.s_attacked));
  (match find_entries corr c.Collect.Scenario.s_multihomed with
  | [] -> Alcotest.fail "unlisted multihomed MOAS not observed"
  | entries ->
    List.iter
      (fun e ->
        Alcotest.(check bool)
          "unlisted multihoming false-alarms the MOAS-list check" false
          e.Corr.x_clean;
        Alcotest.(check Testutil.asn_set_testable)
          "origins are exactly the homes" c.Collect.Scenario.s_homes
          e.Corr.x_origins)
      entries;
    Alcotest.(check bool) "flaps make the episode recur" true
      (List.exists (fun e -> e.Corr.x_seq > 1) entries))

let test_scenario_determinism () =
  let c = Lazy.force baseline in
  let report r = Stream.Report.render r.Mesh.r_merged in
  let a = Mesh.run ~jobs:1 config c.Collect.Scenario.s_streams in
  let b = Mesh.run ~jobs:4 config (List.rev c.Collect.Scenario.s_streams) in
  Alcotest.(check string) "merged report is byte-identical" (report a) (report b)

let () =
  Alcotest.run "collect"
    [
      ( "vantage",
        [
          Alcotest.test_case "tap records origin events" `Quick
            test_tap_records_origin_events;
          Alcotest.test_case "attach validation" `Quick test_attach_validation;
          Alcotest.test_case "dropped-update counter" `Quick test_dropped_counter;
          Alcotest.test_case "millis" `Quick test_millis;
        ] );
      ( "mesh",
        [
          Alcotest.test_case "merge dedups the union" `Quick test_merge_dedup;
          Alcotest.test_case "canonical event order" `Quick test_canonical_order;
          Alcotest.test_case "run validation" `Quick test_run_validation;
          Alcotest.test_case "flagged while open" `Quick test_flagged_while_open;
          Alcotest.test_case "duplicates counter is lazy" `Quick
            test_duplicates_counter_lazy;
        ] );
      ( "properties",
        [
          prop_merged_equals_global;
          prop_full_coverage_vantages_agree;
          prop_jobs_and_order_invariance;
          prop_heap_merge_matches_reference;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "corruption rejected" `Quick
            test_store_rejects_corruption;
          Alcotest.test_case "queries" `Quick test_store_queries;
          Alcotest.test_case "query parse errors" `Quick test_store_parse_errors;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "baseline visibility" `Quick test_scenario_baseline;
          Alcotest.test_case "partition keeps detection" `Quick
            test_scenario_partition;
          Alcotest.test_case "fault-churn arm false-alarms the list check"
            `Quick test_scenario_fault_churn;
          Alcotest.test_case "jobs/order determinism" `Quick
            test_scenario_determinism;
        ] );
    ]
