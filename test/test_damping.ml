(* Tests for route-flap damping (RFC 2439) and its interaction with a
   flapping hijacker. *)

open Net
module Router = Bgp.Router
module Network = Bgp.Network
module Update = Bgp.Update

let victim = Testutil.victim

(* fast-decaying parameters so tests run on small clocks *)
let damping =
  {
    Router.penalty_withdraw = 1000.0;
    penalty_update = 500.0;
    suppress_threshold = 2000.0;
    reuse_threshold = 750.0;
    half_life = 10.0;
  }

let wired_router ?damping () =
  let router = Router.create ?damping (Asn.make 1) in
  Router.add_peer router (Asn.make 2);
  Router.add_peer router (Asn.make 3);
  let scheduled = ref [] in
  Router.set_transport router
    ~send:(fun ~peer:_ _ -> ())
    ~schedule:(fun ~delay k -> scheduled := (delay, k) :: !scheduled);
  (router, scheduled)

let announce ?(from = 2) now router =
  Router.handle_update router ~now
    (Update.announce ~sender:(Asn.make from) (Testutil.route ~from [ from; 10 ]))

let withdraw ?(from = 2) now router =
  Router.handle_update router ~now
    (Update.withdraw ~sender:(Asn.make from) victim)

let test_no_damping_by_default () =
  let router, _ = wired_router () in
  announce 1.0 router;
  withdraw 2.0 router;
  announce 3.0 router;
  withdraw 4.0 router;
  announce 5.0 router;
  Alcotest.(check bool) "route still usable" true (Router.best router victim <> None);
  Alcotest.(check (float 0.0)) "no penalty tracked" 0.0
    (Router.flap_penalty router ~peer:(Asn.make 2) victim ~now:5.0)

let test_first_announcement_is_free () =
  let router, _ = wired_router ~damping () in
  announce 1.0 router;
  Alcotest.(check (float 0.0)) "birth is not a flap" 0.0
    (Router.flap_penalty router ~peer:(Asn.make 2) victim ~now:1.0);
  Alcotest.(check bool) "route installed" true (Router.best router victim <> None)

let test_penalty_accumulates_and_decays () =
  let router, _ = wired_router ~damping () in
  announce 1.0 router;
  withdraw 2.0 router;
  let p = Router.flap_penalty router ~peer:(Asn.make 2) victim ~now:2.0 in
  Alcotest.(check (float 1.0)) "withdrawal penalty" 1000.0 p;
  (* one half-life later the penalty halved *)
  let p = Router.flap_penalty router ~peer:(Asn.make 2) victim ~now:12.0 in
  Alcotest.(check (float 5.0)) "decayed penalty" 500.0 p

let test_suppression_after_flaps () =
  let router, scheduled = wired_router ~damping () in
  announce 1.0 router;
  withdraw 1.5 router;  (* +1000 *)
  announce 2.0 router;  (* +500 *)
  withdraw 2.5 router;  (* +1000 -> over 2000: suppressed *)
  announce 3.0 router;
  Alcotest.(check bool) "suppressed" true
    (Router.is_suppressed router ~peer:(Asn.make 2) victim ~now:3.0);
  Alcotest.(check bool) "flapping route not selected" true
    (Router.best router victim = None);
  Alcotest.(check bool) "reuse re-evaluation scheduled" true
    (List.length !scheduled > 0)

let test_reuse_after_decay () =
  let router, _ = wired_router ~damping () in
  announce 1.0 router;
  withdraw 1.5 router;
  announce 2.0 router;
  withdraw 2.5 router;
  announce 3.0 router;
  Alcotest.(check bool) "suppressed at first" true
    (Router.is_suppressed router ~peer:(Asn.make 2) victim ~now:3.0);
  (* penalty ~2500 at t=3; below reuse (750) after ~2 half-lives *)
  let later = 3.0 +. (3.0 *. damping.Router.half_life) in
  Alcotest.(check bool) "reusable after decay" false
    (Router.is_suppressed router ~peer:(Asn.make 2) victim ~now:later);
  Router.refresh router ~now:later victim;
  Alcotest.(check bool) "route reinstated" true (Router.best router victim <> None)

let test_damping_is_per_peer () =
  let router, _ = wired_router ~damping () in
  announce ~from:2 1.0 router;
  withdraw ~from:2 1.5 router;
  announce ~from:2 2.0 router;
  withdraw ~from:2 2.5 router;
  (* peer 3's stable route is unaffected by peer 2's flapping *)
  announce ~from:3 3.0 router;
  Alcotest.(check bool) "peer 3 not suppressed" false
    (Router.is_suppressed router ~peer:(Asn.make 3) victim ~now:3.0);
  Alcotest.(check bool) "stable route selected" true
    (Router.best router victim <> None)

let test_validation () =
  Alcotest.check_raises "reuse above suppress rejected"
    (Invalid_argument "Router.create: damping reuse must be below suppress")
    (fun () ->
      ignore
        (Router.create
           ~damping:{ damping with Router.reuse_threshold = 9999.0 }
           (Asn.make 1)))

let test_flapping_hijacker_gets_damped () =
  (* a hijacker that flaps its bogus announcement is silenced by damping
     for as long as its penalty stays above the reuse threshold - even
     where MOAS detection is not deployed *)
  let g = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4) ] in
  let net = Network.make ~config:Network.Config.(default |> with_damping_of (fun _ -> Some damping)) g in
  Network.originate ~at:0.0 net 1 victim;
  (* AS4 flaps the hijack rapidly *)
  List.iter
    (fun (at, on) ->
      if on then Network.originate ~at net 4 victim
      else Network.withdraw ~at net 4 victim)
    [ (50.0, true); (52.0, false); (54.0, true); (56.0, false); (58.0, true) ];
  (* observe the network shortly after the last flap, before the penalty
     decays to the reuse threshold *)
  ignore (Sim.Engine.run ~until:65.0 (Network.engine net));
  Alcotest.(check bool) "AS3 suppressed the flapping route" true
    (Router.is_suppressed (Network.router net 3) ~peer:(Asn.make 4) victim
       ~now:65.0);
  (match Network.best_origin net 3 victim with
  | Some origin ->
    Alcotest.(check int) "valid origin wins while damped" 1 (Asn.to_int origin)
  | None -> Alcotest.fail "AS3 lost all routes");
  (* once the penalty decays, the (still bogus, but now stable) route is
     reinstated: damping rate-limits churn, it is no defence on its own *)
  ignore (Network.run net);
  match Network.best_origin net 3 victim with
  | Some origin ->
    Alcotest.(check int) "hijack returns after reuse" 4 (Asn.to_int origin)
  | None -> Alcotest.fail "AS3 lost all routes after reuse"

let () =
  Alcotest.run "damping"
    [
      ( "mechanics",
        [
          Alcotest.test_case "off by default" `Quick test_no_damping_by_default;
          Alcotest.test_case "birth is free" `Quick test_first_announcement_is_free;
          Alcotest.test_case "accumulate + decay" `Quick test_penalty_accumulates_and_decays;
          Alcotest.test_case "suppression" `Quick test_suppression_after_flaps;
          Alcotest.test_case "reuse" `Quick test_reuse_after_decay;
          Alcotest.test_case "per peer" `Quick test_damping_is_per_peer;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "attack interplay",
        [
          Alcotest.test_case "flapping hijacker damped" `Quick
            test_flapping_hijacker_gets_damped;
        ] );
    ]
