(* Tests for the fault-injection subsystem: Fault_plan validation,
   Injector scheduling / determinism / cancellation, per-link message
   impairments, and router crash/restart driven end-to-end through
   Bgp.Network. *)

open Net
module Network = Bgp.Network
module Plan = Faults.Fault_plan
module Injector = Faults.Injector
module Rng = Mutil.Rng
module Engine = Sim.Engine

let victim = Testutil.victim
let asn = Asn.make
let line () = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4) ]
let rng ?(seed = 0xFA17L) () = Rng.create ~seed

(* ------------------------------- plans -------------------------------- *)

let test_plan_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "Fault_plan.link: self loop")
    (fun () -> ignore (Plan.link (asn 1) (asn 1)))

let test_plan_rejects_bad_times () =
  Alcotest.check_raises "negative at"
    (Invalid_argument "Fault_plan.fail: negative time") (fun () ->
      ignore (Plan.fail ~at:(-1.0) (Plan.router (asn 1))));
  Alcotest.check_raises "zero duration"
    (Invalid_argument "Fault_plan.fail: duration must be positive") (fun () ->
      ignore (Plan.fail ~duration:0.0 ~at:1.0 (Plan.router (asn 1))))

let test_plan_rejects_bad_flap () =
  Alcotest.check_raises "period <= down_for"
    (Invalid_argument "Fault_plan.flap: period must exceed down_for")
    (fun () ->
      ignore
        (Plan.flap ~start:0.0 ~period:5.0 ~down_for:5.0 ~until:100.0
           (Plan.link (asn 1) (asn 2))));
  Alcotest.check_raises "until before start"
    (Invalid_argument "Fault_plan.flap: until before start") (fun () ->
      ignore
        (Plan.flap ~start:10.0 ~period:5.0 ~down_for:1.0 ~until:9.0
           (Plan.link (asn 1) (asn 2))))

let test_plan_rejects_bad_churn () =
  let pool = [ Plan.link (asn 1) (asn 2) ] in
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Fault_plan.churn: rate must be positive") (fun () ->
      ignore (Plan.churn ~rate:0.0 ~mean_downtime:5.0 ~until:100.0 pool));
  Alcotest.check_raises "empty pool"
    (Invalid_argument "Fault_plan.churn: no targets") (fun () ->
      ignore (Plan.churn ~rate:0.1 ~mean_downtime:5.0 ~until:100.0 []))

let test_plan_rejects_bad_impairment () =
  Alcotest.check_raises "loss out of range"
    (Invalid_argument "Network.impairment: loss out of [0,1]") (fun () ->
      ignore (Plan.impair ~loss:1.5 ~at:0.0 (asn 1) (asn 2)))

let test_plan_composition () =
  let plan =
    Plan.all
      [
        Plan.fail ~at:10.0 (Plan.link (asn 1) (asn 2));
        Plan.flap ~start:0.0 ~period:10.0 ~down_for:2.0 ~until:50.0
          (Plan.router (asn 3));
        Plan.impair ~loss:0.5 ~at:5.0 (asn 2) (asn 3);
      ]
  in
  Alcotest.(check int) "three specs" 3 (Plan.size plan);
  Alcotest.(check int) "three targets" 3 (List.length (Plan.targets plan));
  Alcotest.(check int) "empty is empty" 0 (Plan.size Plan.empty);
  Alcotest.(check int) "union concatenates" 3
    (Plan.size (Plan.union plan Plan.empty));
  (* one rendered line per spec *)
  Alcotest.(check int) "to_string lines" 3
    (List.length (String.split_on_char '\n' (Plan.to_string plan)))

let test_plan_graph_target_pools () =
  let g = line () in
  Alcotest.(check int) "one target per edge" 3
    (List.length (Plan.link_targets g));
  Alcotest.(check int) "one target per AS" 4
    (List.length (Plan.router_targets g))

(* ------------------------------ injector ------------------------------- *)

let test_arm_validates_targets () =
  let net = Network.make (line ()) in
  Alcotest.check_raises "unknown link"
    (Invalid_argument "Injector.arm: link AS1-AS3 does not exist") (fun () ->
      ignore
        (Injector.arm ~rng:(rng ()) net
           (Plan.fail ~at:1.0 (Plan.Link (asn 1, asn 3)))));
  Alcotest.check_raises "unknown router"
    (Invalid_argument "Injector.arm: router AS9 is not in the topology")
    (fun () ->
      ignore
        (Injector.arm ~rng:(rng ()) net
           (Plan.fail ~at:1.0 (Plan.router (asn 9)))))

let reachability net =
  List.map (fun a -> Network.best_route net a victim <> None) [ 1; 2; 3; 4 ]

let test_one_shot_matches_direct_call () =
  (* a plan-driven cut must leave the network in exactly the state a
     direct Network.fail_link call does *)
  let direct = Network.make (line ()) in
  Network.originate ~at:0.0 direct 1 victim;
  Network.fail_link ~at:50.0 direct 2 3;
  ignore (Network.run direct);
  let injected = Network.make (line ()) in
  Network.originate ~at:0.0 injected 1 victim;
  let inj =
    Injector.arm ~rng:(rng ()) injected
      (Plan.fail ~at:50.0 (Plan.link (asn 2) (asn 3)))
  in
  ignore (Network.run injected);
  Alcotest.(check (list bool)) "same reachability" (reachability direct)
    (reachability injected);
  Alcotest.(check bool) "link down" false (Network.link_is_up injected 2 3);
  Alcotest.(check int) "one fault applied" 1 (Injector.injected inj)

let test_fail_with_duration_recovers () =
  let net = Network.make (line ()) in
  Network.originate ~at:0.0 net 1 victim;
  let inj =
    Injector.arm ~rng:(rng ()) net
      (Plan.fail ~duration:50.0 ~at:50.0 (Plan.link (asn 2) (asn 3)))
  in
  Alcotest.(check bool) "converged" true (Network.run net = Engine.Quiescent);
  Alcotest.(check bool) "link back up" true (Network.link_is_up net 2 3);
  Alcotest.(check (list bool)) "all recovered" [ true; true; true; true ]
    (reachability net);
  Alcotest.(check int) "down then up" 2 (Injector.injected inj)

let test_router_crash_and_restart () =
  (* crash the origin for a while: the whole line loses the route, then
     the restart re-announces the surviving startup configuration *)
  let net = Network.make (line ()) in
  Network.originate ~at:0.0 net 1 victim;
  let inj =
    Injector.arm ~rng:(rng ()) net
      (Plan.fail ~duration:100.0 ~at:50.0 (Plan.router (asn 1)))
  in
  ignore (Network.run net);
  Alcotest.(check bool) "router back up" true (Network.router_is_up net 1);
  Alcotest.(check (list bool)) "route re-propagated" [ true; true; true; true ]
    (reachability net);
  Alcotest.(check int) "crash then restart" 2 (Injector.injected inj)

let test_router_crash_forever () =
  let net = Network.make (line ()) in
  Network.originate ~at:0.0 net 1 victim;
  ignore
    (Injector.arm ~rng:(rng ()) net (Plan.fail ~at:50.0 (Plan.router (asn 1))));
  ignore (Network.run net);
  Alcotest.(check bool) "router down" false (Network.router_is_up net 1);
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "AS%d lost the route" a)
        true
        (Network.best_route net a victim = None))
    [ 2; 3; 4 ]

let test_flap_cycle_count () =
  (* cycles start at 50, 70 and 90 (down 5 s each): six state changes *)
  let net = Network.make (line ()) in
  Network.originate ~at:0.0 net 1 victim;
  let inj =
    Injector.arm ~rng:(rng ()) net
      (Plan.flap ~start:50.0 ~period:20.0 ~down_for:5.0 ~until:90.0
         (Plan.link (asn 2) (asn 3)))
  in
  Alcotest.(check bool) "converged" true (Network.run net = Engine.Quiescent);
  Alcotest.(check int) "three downs, three ups" 6 (Injector.injected inj);
  Alcotest.(check bool) "link finishes up" true (Network.link_is_up net 2 3);
  Alcotest.(check (list bool)) "routing recovered" [ true; true; true; true ]
    (reachability net)

let test_stop_cancels_pending () =
  let net = Network.make (line ()) in
  Network.originate ~at:0.0 net 1 victim;
  let inj =
    Injector.arm ~rng:(rng ()) net
      (Plan.fail ~at:50.0 (Plan.link (asn 2) (asn 3)))
  in
  Engine.schedule_at (Network.engine net) ~time:10.0 (fun _ ->
      Injector.stop inj);
  ignore (Network.run net);
  Alcotest.(check bool) "stopped" true (Injector.stopped inj);
  Alcotest.(check int) "nothing applied" 0 (Injector.injected inj);
  Alcotest.(check bool) "link never cut" true (Network.link_is_up net 2 3);
  Alcotest.(check (list bool)) "routing untouched" [ true; true; true; true ]
    (reachability net)

let test_empty_plan_is_noop () =
  let net = Network.make (line ()) in
  Network.originate ~at:0.0 net 1 victim;
  let inj = Injector.arm ~rng:(rng ()) net Plan.empty in
  Alcotest.(check bool) "converged" true (Network.run net = Engine.Quiescent);
  Alcotest.(check int) "nothing injected" 0 (Injector.injected inj);
  Alcotest.(check (list bool)) "full reachability" [ true; true; true; true ]
    (reachability net)

(* ---------------------------- determinism ------------------------------ *)

let churn_run seed =
  let g =
    Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4); (4, 1); (2, 4) ]
  in
  let metrics = Obs.Registry.create () in
  let net =
    Network.make ~config:Network.Config.(default |> with_metrics metrics) g
  in
  Network.originate ~at:0.0 net 1 victim;
  let inj =
    Injector.arm ~metrics ~rng:(Rng.create ~seed) net
      (Plan.churn ~start:5.0 ~rate:0.2 ~mean_downtime:10.0 ~until:80.0
         (Plan.link_targets g))
  in
  let outcome = Network.run net in
  ( outcome,
    Injector.injected inj,
    Engine.now (Network.engine net),
    Network.total_updates_sent net,
    List.map (fun a -> Network.best_route net a victim <> None) [ 1; 2; 3; 4 ] )

let test_churn_deterministic () =
  let o1, n1, t1, u1, r1 = churn_run 0xC0FFEEL in
  let o2, n2, t2, u2, r2 = churn_run 0xC0FFEEL in
  Alcotest.(check bool) "both converged" true
    (o1 = Engine.Quiescent && o2 = Engine.Quiescent);
  Alcotest.(check bool) "faults fired" true (n1 > 0);
  Alcotest.(check int) "same fault count" n1 n2;
  Alcotest.(check (float 0.0)) "same convergence time" t1 t2;
  Alcotest.(check int) "same update count" u1 u2;
  Alcotest.(check (list bool)) "same final routes" r1 r2

(* --------------------------- impairments ------------------------------- *)

let test_total_loss_blocks_link () =
  let net = Network.make (line ()) in
  Network.originate ~at:0.0 net 1 victim;
  ignore
    (Injector.arm ~rng:(rng ()) net
       (Plan.impair ~loss:1.0 ~at:0.0 (asn 2) (asn 3)));
  Alcotest.(check bool) "converged" true (Network.run net = Engine.Quiescent);
  Alcotest.(check (list bool)) "route stops at the lossy link"
    [ true; true; false; false ] (reachability net)

let test_duplication_inflates_messages_only () =
  let run dup =
    let net = Network.make (line ()) in
    Network.originate ~at:0.0 net 1 victim;
    if dup then
      ignore
        (Injector.arm ~rng:(rng ()) net
           (Plan.impair ~duplicate:1.0 ~at:0.0 (asn 2) (asn 3)));
    ignore (Network.run net);
    (Network.total_updates_received net, reachability net)
  in
  let clean_received, clean_routes = run false in
  let dup_received, dup_routes = run true in
  Alcotest.(check bool) "duplicates received" true
    (dup_received > clean_received);
  Alcotest.(check (list bool)) "routing identical" clean_routes dup_routes

let test_jitter_still_converges () =
  let g = Topology.As_graph.of_edges [ (1, 2); (2, 3); (3, 4); (4, 1) ] in
  let net = Network.make g in
  Network.originate ~at:0.0 net 1 victim;
  let plan =
    Plan.all
      (List.map
         (fun (a, b) -> Plan.impair ~jitter:5.0 ~at:0.0 a b)
         (Topology.As_graph.edges g))
  in
  ignore (Injector.arm ~rng:(rng ()) net plan);
  Alcotest.(check bool) "converged" true (Network.run net = Engine.Quiescent);
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "AS%d reached" a)
        true
        (Network.best_route net a victim <> None))
    [ 1; 2; 3; 4 ]

let test_impairment_with_duration_expires () =
  (* while the middle link drops everything the far side is dark; once the
     impairment expires a later announcement gets through *)
  let net = Network.make (line ()) in
  Network.originate ~at:0.0 net 1 victim;
  Network.withdraw ~at:30.0 net 1 victim;
  Network.originate ~at:200.0 net 1 victim;
  ignore
    (Injector.arm ~rng:(rng ()) net
       (Plan.impair ~duration:100.0 ~loss:1.0 ~at:0.0 (asn 2) (asn 3)));
  ignore (Network.run net);
  Alcotest.(check bool) "impairment removed" true
    (Network.link_impairment net 2 3 = None);
  Alcotest.(check (list bool)) "second announcement delivered"
    [ true; true; true; true ] (reachability net)

(* --------------------- robustness experiment smoke --------------------- *)

let test_every_path_blocking_smoke () =
  let topology = Topology.Paper_topologies.topology_25 () in
  let points =
    Experiments.Robustness.partition_study ~seed:7L ~runs:3 ~topology ()
  in
  Alcotest.(check bool) "sweep produced points" true (List.length points > 1);
  Alcotest.(check bool) "Section 4.1 claim holds" true
    (Experiments.Robustness.every_path_blocking_holds points);
  (* with zero links cut nothing is partitioned and detection is total *)
  match points with
  | { Experiments.Robustness.links_cut = 0; runs; partitioned_runs;
      detected_reachable; _ } :: _ ->
    Alcotest.(check int) "no partition at zero cuts" 0 partitioned_runs;
    Alcotest.(check int) "all runs detect at zero cuts" runs detected_reachable
  | _ -> Alcotest.fail "first point should be links_cut = 0"

let () =
  Alcotest.run "faults"
    [
      ( "fault plan",
        [
          Alcotest.test_case "self loop rejected" `Quick test_plan_rejects_self_loop;
          Alcotest.test_case "bad times rejected" `Quick test_plan_rejects_bad_times;
          Alcotest.test_case "bad flap rejected" `Quick test_plan_rejects_bad_flap;
          Alcotest.test_case "bad churn rejected" `Quick test_plan_rejects_bad_churn;
          Alcotest.test_case "bad impairment rejected" `Quick
            test_plan_rejects_bad_impairment;
          Alcotest.test_case "composition" `Quick test_plan_composition;
          Alcotest.test_case "graph target pools" `Quick
            test_plan_graph_target_pools;
        ] );
      ( "injector",
        [
          Alcotest.test_case "arm validates targets" `Quick
            test_arm_validates_targets;
          Alcotest.test_case "one-shot matches direct call" `Quick
            test_one_shot_matches_direct_call;
          Alcotest.test_case "timed failure recovers" `Quick
            test_fail_with_duration_recovers;
          Alcotest.test_case "router crash and restart" `Quick
            test_router_crash_and_restart;
          Alcotest.test_case "router crash forever" `Quick
            test_router_crash_forever;
          Alcotest.test_case "flap cycle count" `Quick test_flap_cycle_count;
          Alcotest.test_case "stop cancels pending faults" `Quick
            test_stop_cancels_pending;
          Alcotest.test_case "empty plan is a no-op" `Quick
            test_empty_plan_is_noop;
        ] );
      ( "determinism",
        [ Alcotest.test_case "churn reproducible from seed" `Quick
            test_churn_deterministic ] );
      ( "impairments",
        [
          Alcotest.test_case "total loss blocks a link" `Quick
            test_total_loss_blocks_link;
          Alcotest.test_case "duplication inflates messages only" `Quick
            test_duplication_inflates_messages_only;
          Alcotest.test_case "jitter still converges" `Quick
            test_jitter_still_converges;
          Alcotest.test_case "impairment duration expires" `Quick
            test_impairment_with_duration_expires;
        ] );
      ( "robustness experiment",
        [ Alcotest.test_case "every-path-blocking smoke" `Slow
            test_every_path_blocking_smoke ] );
    ]
