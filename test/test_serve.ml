(* Tests for lib/serve: MOASSERV frame round-trips and defensive decoding,
   the unified Query builder/parser/codec equivalences, live-tail alert
   derivation with deterministic subscription delivery ordering, and an
   end-to-end client/server smoke over the full wire path. *)

open Net
module M = Stream.Monitor
module Src = Stream.Source
module Q = Collect.Query
module Corr = Collect.Correlator
module Store = Collect.Store
module Proto = Serve.Proto
module Server = Serve.Server
module Client = Serve.Client
module Transport = Serve.Transport

let p1 = Prefix.of_string "192.0.2.0/24"
let p2 = Prefix.of_string "198.51.100.0/24"
let p2_sub = Prefix.of_string "198.51.100.128/25"

let ev ?(peer = 99) ~time prefix action =
  { M.time; peer = Asn.make peer; prefix; action }

let ann ?list o =
  M.Announce { origin = Asn.make o; moas_list = Option.map Asn.Set.of_list list }

let wd o = M.Withdraw { origin = Asn.make o }

let entry ?(seq = 1) ?ended ?(days = 1) ?(max_origins = 2) ?(clean = true)
    ?(seen = [ "vp00" ]) ?first ?last ~prefix ~origins ~started () =
  {
    Corr.x_prefix = prefix;
    x_seq = seq;
    x_started = started;
    x_ended = ended;
    x_days = days;
    x_max_origins = max_origins;
    x_origins = Asn.Set.of_list (List.map Asn.make origins);
    x_clean = clean;
    x_seen_by = seen;
    x_first_detect = first;
    x_last_detect = last;
  }

let sample_store () =
  Store.of_correlation
    {
      Corr.c_vantages = [ "vp00"; "vp01"; "vp02" ];
      c_entries =
        [
          entry ~prefix:p1 ~origins:[ 10; 20 ] ~started:100 ~ended:900
            ~clean:false
            ~seen:[ "vp00"; "vp02" ]
            ~first:120 ~last:300 ();
          entry ~prefix:p2 ~origins:[ 30; 40 ] ~started:50
            ~seen:[ "vp00"; "vp01"; "vp02" ]
            ~first:50 ~last:60 ();
          entry ~prefix:p2_sub ~origins:[ 30; 99 ] ~started:400 ~ended:500
            ~seen:[] ();
        ];
    }

let sample_query =
  Q.(empty |> prefix p2 |> covered |> origin (Asn.make 30) |> since 10
    |> until 90_000 |> min_visibility 2 |> bucket Stream.Monitor.Short)

let sample_alert kind =
  {
    Proto.al_time = 12_345;
    al_prefix = p1;
    al_origins = Asn.Set.of_list [ Asn.make 10; Asn.make 20 ];
    al_kind = kind;
  }

let sample_stats =
  {
    Proto.st_entries = 3;
    st_vantages = 3;
    st_sessions = 2;
    st_subscriptions = 4;
    st_live_batches = 7;
    st_live_updates = 473;
    st_live_open = 65;
    st_live_days = 7;
    st_degraded = true;
    st_shed = 12;
    st_timeouts = 3;
    st_evicted = 1;
  }

let sample_requests =
  [
    Proto.Ping;
    Proto.Query sample_query;
    Proto.Query Q.empty;
    Proto.Count sample_query;
    Proto.Subscribe Q.(empty |> min_visibility 1);
    Proto.Unsubscribe 42;
    Proto.Stats;
  ]

let sample_responses =
  [
    Proto.Pong;
    Proto.Entries
      { vantage_count = 3; entries = Store.entries (sample_store ()) };
    Proto.Entries { vantage_count = 0; entries = [] };
    Proto.Count_is 17;
    Proto.Subscribed 1;
    Proto.Unsubscribed 9;
    Proto.Alert { sub = 3; alert = sample_alert Proto.Opened };
    Proto.Alert { sub = 1; alert = sample_alert Proto.Flagged };
    Proto.Alert { sub = 2; alert = sample_alert Proto.Closed };
    Proto.Stats_are sample_stats;
    Proto.Rejected "no such thing";
  ]

(* ---------------- frame round-trips ---------------- *)

let test_request_roundtrip () =
  List.iter
    (fun req ->
      let bytes = Proto.encode_request req in
      let req' = Proto.decode_request bytes in
      Alcotest.(check string)
        "request survives the codec" (Proto.request_kind req)
        (Proto.request_kind req');
      Alcotest.(check bool) "re-encode is byte-identical" true
        (Bytes.equal bytes (Proto.encode_request req')))
    sample_requests

let test_response_roundtrip () =
  List.iter
    (fun resp ->
      let bytes = Proto.encode_response resp in
      let resp' = Proto.decode_response bytes in
      Alcotest.(check string)
        "response survives the codec (rendered form)"
        (Proto.render_response resp)
        (Proto.render_response resp');
      Alcotest.(check bool) "re-encode is byte-identical" true
        (Bytes.equal bytes (Proto.encode_response resp')))
    sample_responses

(* ---------------- defensive decoding ---------------- *)

let expect_corrupt decode what data =
  match decode data with
  | _ -> Alcotest.failf "%s was accepted" what
  | exception Proto.Corrupt _ -> ()

let exercise_corruption encode decode value =
  let bytes = encode value in
  (* truncation at every cut point *)
  for n = 0 to Bytes.length bytes - 1 do
    expect_corrupt decode
      (Printf.sprintf "truncation to %d octets" n)
      (Bytes.sub bytes 0 n)
  done;
  (* trailing garbage (the payload length no longer matches either) *)
  expect_corrupt decode "trailing octet"
    (Bytes.cat bytes (Bytes.make 1 '\x00'));
  (* bad magic *)
  let bad = Bytes.copy bytes in
  Bytes.set bad 0 'X';
  expect_corrupt decode "bad magic" bad;
  (* version bump: octet 8 follows the 8-octet magic *)
  let bad = Bytes.copy bytes in
  Bytes.set bad 8 '\x07';
  expect_corrupt decode "version mismatch" bad;
  (* unknown kind tag: octet 9 *)
  let bad = Bytes.copy bytes in
  Bytes.set bad 9 '\xff';
  expect_corrupt decode "unknown kind" bad;
  (* payload length lie: the u32 at octets 10..13 *)
  let bad = Bytes.copy bytes in
  Bytes.set bad 13 (Char.chr ((Char.code (Bytes.get bad 13) + 1) land 0xff));
  expect_corrupt decode "payload length lie" bad

let test_request_rejects_corruption () =
  exercise_corruption Proto.encode_request Proto.decode_request
    (Proto.Subscribe sample_query);
  exercise_corruption Proto.encode_request Proto.decode_request Proto.Ping

let test_response_rejects_corruption () =
  exercise_corruption Proto.encode_response Proto.decode_response
    (Proto.Entries
       { vantage_count = 3; entries = Store.entries (sample_store ()) });
  exercise_corruption Proto.encode_response Proto.decode_response
    (Proto.Alert { sub = 1; alert = sample_alert Proto.Flagged })

(* ---------------- protocol fuzzing: mutated frames ---------------- *)

let req_frames = Array.of_list (List.map Proto.encode_request sample_requests)

let resp_frames =
  Array.of_list (List.map Proto.encode_response sample_responses)

let apply_mutations frame muts =
  let b = Bytes.copy frame in
  List.iter
    (fun (pos, mask) ->
      let i = pos mod Bytes.length b in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask)))
    muts;
  b

(* a decoder for either direction, picked by the generator *)
let pick_frame is_req fi =
  if is_req then
    ( req_frames.(fi mod Array.length req_frames),
      fun b -> ignore (Proto.decode_request b) )
  else
    ( resp_frames.(fi mod Array.length resp_frames),
      fun b -> ignore (Proto.decode_response b) )

let prop_mutated_frames_never_crash =
  (* flip random octets of valid frames: the decoder must either return a
     value or raise Corrupt — any other exception (or a hang / over-read)
     fails the property *)
  Testutil.qtest ~count:2000 "mutated frame decodes or raises Corrupt"
    QCheck2.Gen.(
      triple bool (int_range 0 10_000)
        (list_size (int_range 1 8)
           (pair (int_range 0 10_000) (int_range 1 255))))
    (fun (is_req, fi, muts) ->
      let frame, decode = pick_frame is_req fi in
      match decode (apply_mutations frame muts) with
      | () -> true
      | exception Proto.Corrupt _ -> true)

let prop_single_octet_corruption_caught =
  (* the frame checksum guarantee: corrupting exactly one octet can never
     yield a different valid frame — it is always surfaced as Corrupt *)
  Testutil.qtest ~count:2000 "single-octet corruption is always Corrupt"
    QCheck2.Gen.(
      triple bool (int_range 0 10_000)
        (pair (int_range 0 10_000) (int_range 1 255)))
    (fun (is_req, fi, mut) ->
      let frame, decode = pick_frame is_req fi in
      match decode (apply_mutations frame [ mut ]) with
      | () -> false
      | exception Proto.Corrupt _ -> true)

(* ---------------- the unified query ---------------- *)

let query_gen =
  QCheck2.Gen.(
    map2
      (fun (p, cov, o) (s, u, k, b) -> (p, cov, o, s, u, k, b))
      (triple (option Testutil.prefix_gen) bool (option Testutil.asn_gen))
      (quad
         (option (int_range 0 200_000))
         (option (int_range 0 200_000))
         (option (int_range 0 5))
         (option
            (oneofl Stream.Monitor.[ Short; Medium; Long ]))))

let build_query (p, cov, o, s, u, k, b) =
  let q = Q.empty in
  let q = match p with Some p -> Q.prefix p q | None -> q in
  let q = if cov then Q.covered q else q in
  let q = match o with Some o -> Q.origin (Asn.make o) q | None -> q in
  let q = match s with Some s -> Q.since s q | None -> q in
  let q = match u with Some u -> Q.until u q | None -> q in
  let q = match k with Some k -> Q.min_visibility k q | None -> q in
  let q = match b with Some b -> Q.bucket b q | None -> q in
  q

let prop_builder_parse_equivalence =
  Testutil.qtest ~count:300
    "builder == parse (to_string q) == decode (encode q)" query_gen
    (fun spec ->
      let q = build_query spec in
      (match Store.parse_query (Q.to_string q) with
      | Ok q' -> Q.equal q q'
      | Error _ -> false)
      && Q.equal q (Q.decode (Q.encode q)))

let prop_query_wire_roundtrip =
  Testutil.qtest ~count:300 "query survives the request frame" query_gen
    (fun spec ->
      let q = build_query spec in
      match Proto.decode_request (Proto.encode_request (Proto.Query q)) with
      | Proto.Query q' -> Q.equal q q'
      | _ -> false)

let test_builder_validation () =
  List.iter
    (fun (name, f) ->
      match f Q.empty with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "%s accepted" name)
    [
      ("negative since", Q.since (-1));
      ("negative until", Q.until (-5));
      ("negative visibility floor", Q.min_visibility (-2));
    ];
  match Q.parse "since=-3" with
  | Ok _ -> Alcotest.fail "negative since parsed"
  | Error _ -> ()

(* ---------------- live tail: alerts and delivery ordering ------------- *)

(* Two batches over a server with subscriptions on both clients:

   batch 1
     p1:     AS10 (list {10}) then AS20 (no list)  -> opens at 20, flagged
     p2_sub: AS30 and AS40, both listing {30,40}   -> opens at 40, clean
   batch 2
     p1: withdraw AS20                             -> closes at 150

   Flag alerts carry the monitor's stream clock at the settle point (the
   latest event time, 40).  Expected alerts in (time, prefix, kind) order:
     batch 1: opened p1 @20;  flagged p1 @40;  opened p2_sub @40
     batch 2: closed p1 @150 *)
let tail_batches =
  [|
    {
      Src.time = 100;
      day = None;
      events =
        [|
          ev ~time:10 p1 (ann ~list:[ 10 ] 10);
          ev ~time:20 p1 (ann 20);
          ev ~time:30 p2_sub (ann ~list:[ 30; 40 ] 30);
          ev ~time:40 p2_sub (ann ~list:[ 30; 40 ] 40);
        |];
    };
    { Src.time = 200; day = None; events = [| ev ~time:150 p1 (wd 20) |] };
  |]

let rendered rs = List.map Proto.render_response rs

let test_subscription_delivery_ordering () =
  let server = Server.create ~store:(sample_store ()) () in
  let a = Client.connect server and b = Client.connect server in
  let subscribe c q =
    match Client.call c (Proto.Subscribe q) with
    | Proto.Subscribed id -> id
    | r -> Alcotest.failf "subscribe failed: %s" (Proto.render_response r)
  in
  Alcotest.(check int) "a/sub ids start at 1" 1 (subscribe a Q.empty);
  Alcotest.(check int) "a/second sub" 2 (subscribe a Q.(empty |> prefix p1));
  Alcotest.(check int) "b/ids are per-session" 1
    (subscribe b Q.(empty |> prefix p2 |> covered));
  Alcotest.(check int) "b/origin filter" 2
    (subscribe b Q.(empty |> origin (Asn.make 20)));
  Alcotest.(check int) "b/floor above live visibility" 3
    (subscribe b Q.(empty |> min_visibility 2));
  let source = Src.of_batches tail_batches in
  Alcotest.(check int) "one batch tailed" 1
    (Server.tail ~max_batches:1 server source);
  (* alerts in (time, prefix, kind) order; within one alert, subscriptions
     in ascending id *)
  Alcotest.(check (list string)) "first batch, client a"
    [
      "alert #1 opened 192.0.2.0/24 origins={AS10,AS20} at 20";
      "alert #2 opened 192.0.2.0/24 origins={AS10,AS20} at 20";
      "alert #1 flagged 192.0.2.0/24 origins={AS10,AS20} at 40";
      "alert #2 flagged 192.0.2.0/24 origins={AS10,AS20} at 40";
      "alert #1 opened 198.51.100.128/25 origins={AS30,AS40} at 40";
    ]
    (rendered (Client.poll a));
  Alcotest.(check (list string)) "first batch, client b"
    [
      "alert #2 opened 192.0.2.0/24 origins={AS10,AS20} at 20";
      "alert #2 flagged 192.0.2.0/24 origins={AS10,AS20} at 40";
      "alert #1 opened 198.51.100.128/25 origins={AS30,AS40} at 40";
    ]
    (rendered (Client.poll b));
  Alcotest.(check (list string)) "poll drains" [] (rendered (Client.poll a));
  (* unsubscribing stops delivery for that subscription only *)
  (match Client.call a (Proto.Unsubscribe 1) with
  | Proto.Unsubscribed 1 -> ()
  | r -> Alcotest.failf "unsubscribe failed: %s" (Proto.render_response r));
  Alcotest.(check int) "second batch tailed" 1 (Server.tail server source);
  Alcotest.(check (list string)) "second batch, client a"
    [ "alert #2 closed 192.0.2.0/24 origins={AS10,AS20} at 150" ]
    (rendered (Client.poll a));
  Alcotest.(check (list string)) "second batch, client b"
    [ "alert #2 closed 192.0.2.0/24 origins={AS10,AS20} at 150" ]
    (rendered (Client.poll b));
  Alcotest.(check int) "source exhausted" 0 (Server.tail server source);
  Client.close a;
  Client.close b;
  Alcotest.(check int) "sessions drained" 0 (Server.session_count server)

let test_tail_within_one_batch () =
  (* an episode that opens and closes inside one batch still raises both
     lifecycle alerts *)
  let server = Server.create ~store:(Store.empty ~vantages:[ "v" ]) () in
  let c = Client.connect server in
  (match Client.call c (Proto.Subscribe Q.empty) with
  | Proto.Subscribed _ -> ()
  | r -> Alcotest.failf "subscribe failed: %s" (Proto.render_response r));
  let batch =
    {
      Src.time = 500;
      day = None;
      events =
        [|
          ev ~time:10 p1 (ann ~list:[ 10 ] 10);
          ev ~time:20 p1 (ann 20);
          ev ~time:30 p1 (wd 20);
        |];
    }
  in
  ignore (Server.tail server (Src.of_batches [| batch |]));
  (* MOAS-list validation is deferred to settle points (mid-batch
     re-announcement races must not raise false alarms), so a conflict
     that closes before the batch settles is never flagged: the episode
     raises exactly its two lifecycle alerts *)
  Alcotest.(check (list string)) "opened then closed, no flag"
    [
      "alert #1 opened 192.0.2.0/24 origins={AS10,AS20} at 20";
      "alert #1 closed 192.0.2.0/24 origins={AS10,AS20} at 30";
    ]
    (rendered (Client.poll c));
  Client.close c

(* ---------------- resilience: deadlines, shedding, eviction ----------- *)

let ping_frame = Proto.encode_request Proto.Ping

let expect_rejected ~what ~needle frame =
  match Proto.decode_response frame with
  | Proto.Rejected reason -> Testutil.check_contains ~what reason needle
  | r -> Alcotest.failf "%s was answered: %s" what (Proto.render_response r)

let test_deadline_budget () =
  let clock = ref 100.0 in
  let limits = { Server.default_limits with Server.deadline = 1.0 } in
  let server =
    Server.create ~limits ~now:(fun () -> !clock) ~store:(sample_store ()) ()
  in
  let sid = Server.open_session server in
  (match
     Proto.decode_response (Server.handle server ~session:sid ping_frame)
   with
  | Proto.Pong -> ()
  | r -> Alcotest.failf "fresh ping failed: %s" (Proto.render_response r));
  (* the budget is measured from arrival: a frame that spent two seconds
     in transit is dead on arrival, no work done *)
  expect_rejected ~what:"stale arrival" ~needle:"deadline exceeded"
    (Server.handle ~arrival:(!clock -. 2.0) server ~session:sid ping_frame);
  Alcotest.(check int) "timeout counted" 1 (Server.timeout_total server);
  Alcotest.(check int) "stats see the timeout" 1
    (Server.live_stats server).Proto.st_timeouts

let test_overload_shed () =
  let limits = { Server.default_limits with Server.max_inflight = 0 } in
  let server = Server.create ~limits ~store:(sample_store ()) () in
  let sid = Server.open_session server in
  expect_rejected ~what:"overload refusal" ~needle:"overloaded"
    (Server.handle server ~session:sid ping_frame);
  Alcotest.(check int) "shed counted" 1 (Server.shed_total server)

let test_queue_shed_and_evict () =
  (* queue_high_water 2: batch 1's three alerts overflow each outbox once,
     shedding the OLDEST alert; a session that keeps overflowing
     (evict_after 2) is dropped wholesale *)
  let limits =
    { Server.default_limits with Server.queue_high_water = 2; evict_after = 2 }
  in
  let server =
    Server.create ~limits ~store:(Store.empty ~vantages:[ "v" ]) ()
  in
  let a = Client.connect server and b = Client.connect server in
  List.iter
    (fun c ->
      match Client.call c (Proto.Subscribe Q.empty) with
      | Proto.Subscribed _ -> ()
      | r -> Alcotest.failf "subscribe failed: %s" (Proto.render_response r))
    [ a; b ];
  let source = Src.of_batches tail_batches in
  Alcotest.(check int) "first batch tailed" 1
    (Server.tail ~max_batches:1 server source);
  Alcotest.(check int) "one shed per session" 2 (Server.shed_total server);
  (* the newest suffix survives, in the original order *)
  Alcotest.(check (list string)) "oldest alert shed first"
    [
      "alert #1 flagged 192.0.2.0/24 origins={AS10,AS20} at 40";
      "alert #1 opened 198.51.100.128/25 origins={AS30,AS40} at 40";
    ]
    (rendered (Client.poll a));
  (* a drained its outbox; b never polls, so batch 2 overflows it a second
     time, crossing evict_after: b is evicted, a is unaffected *)
  Alcotest.(check int) "second batch tailed" 1 (Server.tail server source);
  Alcotest.(check int) "slow consumer evicted" 1 (Server.evicted_total server);
  Alcotest.(check int) "well-behaved session survives" 1
    (Server.session_count server);
  Alcotest.(check (list string)) "evicted session polls nothing" []
    (rendered (Client.poll b));
  Alcotest.(check (list string)) "surviving session still gets alerts"
    [ "alert #1 closed 192.0.2.0/24 origins={AS10,AS20} at 150" ]
    (rendered (Client.poll a));
  Client.close a

(* ---------------- client retry ---------------- *)

(* retry schedule with no real pauses: tests run at full speed *)
let fast_retry =
  { Client.default_retry with Client.base_delay = 0.; max_delay = 0. }

(* a transport whose next [fail_first] requests raise Unavailable *)
let flaky_transport server fail_first =
  let inner = Transport.of_server server in
  let remaining = ref fail_first in
  ( {
      inner with
      Transport.request =
        (fun ~arrival ~session data ->
          if !remaining > 0 then begin
            decr remaining;
            raise (Transport.Unavailable "flaky")
          end;
          inner.Transport.request ~arrival ~session data);
    },
    remaining )

let test_retry_transient_then_success () =
  let server = Server.create ~store:(sample_store ()) () in
  let transport, _ = flaky_transport server 2 in
  let c = Client.connect_via ~retry:fast_retry ~sleep:(fun _ -> ()) transport in
  (match Client.call c Proto.Ping with
  | Proto.Pong -> ()
  | r -> Alcotest.failf "ping failed: %s" (Proto.render_response r));
  Alcotest.(check int) "two re-sends" 2 (Client.retries c);
  Alcotest.(check int) "no failures" 0 (Client.failures c);
  Client.close c

let test_retry_exhaustion_raises () =
  let server = Server.create ~store:(sample_store ()) () in
  let transport, _ = flaky_transport server 100 in
  let c = Client.connect_via ~retry:fast_retry ~sleep:(fun _ -> ()) transport in
  (match Client.call c (Proto.Query Q.empty) with
  | _ -> Alcotest.fail "exhausted retries did not raise"
  | exception Client.Failed (Client.Unreachable _) -> ());
  Alcotest.(check int) "all attempts used" 2 (Client.retries c);
  Alcotest.(check int) "failure counted" 1 (Client.failures c)

let test_no_blind_retry_of_subscribe () =
  (* a Subscribe whose fate is unknown must not be re-sent — it could
     double-subscribe: one transport failure fails the call immediately *)
  let server = Server.create ~store:(sample_store ()) () in
  let transport, remaining = flaky_transport server 1 in
  let c = Client.connect_via ~retry:fast_retry ~sleep:(fun _ -> ()) transport in
  (match Client.call c (Proto.Subscribe Q.empty) with
  | _ -> Alcotest.fail "non-idempotent call was retried"
  | exception Client.Failed (Client.Unreachable _) -> ());
  Alcotest.(check int) "no re-send happened" 0 (Client.retries c);
  Alcotest.(check int) "the fault was consumed" 0 !remaining;
  Alcotest.(check int) "no subscription leaked" 0
    (Server.subscription_count server)

let test_subscribe_retried_after_preexec_refusal () =
  (* an overload shed provably happens before execution, so even a
     Subscribe is safe to re-send after one *)
  let server = Server.create ~store:(sample_store ()) () in
  let inner = Transport.of_server server in
  let first = ref true in
  let transport =
    {
      inner with
      Transport.request =
        (fun ~arrival ~session data ->
          if !first then begin
            first := false;
            Proto.encode_response
              (Proto.Rejected "overloaded: too many requests in flight")
          end
          else inner.Transport.request ~arrival ~session data);
    }
  in
  let c = Client.connect_via ~retry:fast_retry ~sleep:(fun _ -> ()) transport in
  (match Client.call c (Proto.Subscribe Q.empty) with
  | Proto.Subscribed 1 -> ()
  | r -> Alcotest.failf "subscribe failed: %s" (Proto.render_response r));
  Alcotest.(check int) "one re-send" 1 (Client.retries c);
  Alcotest.(check int) "exactly one subscription" 1
    (Server.subscription_count server);
  Client.close c

let test_call_timeout () =
  (* replies slower than the per-call budget (on the injected clock) are
     a transport failure: retried, then Failed (Timed_out _) *)
  let server = Server.create ~store:(sample_store ()) () in
  let inner = Transport.of_server server in
  let t = ref 0.0 in
  let transport =
    {
      inner with
      Transport.request =
        (fun ~arrival ~session data ->
          t := !t +. 5.0;
          inner.Transport.request ~arrival ~session data);
    }
  in
  let c =
    Client.connect_via
      ~retry:{ fast_retry with Client.attempts = 2 }
      ~timeout:1.0
      ~clock:(fun () -> !t)
      ~sleep:(fun _ -> ())
      transport
  in
  (match Client.call c Proto.Ping with
  | _ -> Alcotest.fail "slow reply was accepted"
  | exception Client.Failed (Client.Timed_out _) -> ());
  Alcotest.(check int) "retried once before giving up" 1 (Client.retries c)

(* ---------------- client/server integration smoke ---------------- *)

let test_serve_smoke () =
  let store = sample_store () in
  let metrics = Obs.Registry.create () in
  let server = Server.create ~metrics ~store () in
  let c = Client.connect server in
  (match Client.call c Proto.Ping with
  | Proto.Pong -> ()
  | r -> Alcotest.failf "ping failed: %s" (Proto.render_response r));
  (* a wire query returns exactly what the store returns directly *)
  let q = Q.(empty |> prefix p2 |> covered) in
  (match Client.call c (Proto.Query q) with
  | Proto.Entries { vantage_count; entries } ->
    Alcotest.(check int) "vantage count" 3 vantage_count;
    Alcotest.(check (list string)) "wire query == direct store query"
      (List.map (Corr.render_entry ~vantage_count:3) (Store.query store q))
      (List.map (Corr.render_entry ~vantage_count:3) entries)
  | r -> Alcotest.failf "query failed: %s" (Proto.render_response r));
  (match Client.call c (Proto.Count Q.empty) with
  | Proto.Count_is 3 -> ()
  | r -> Alcotest.failf "count failed: %s" (Proto.render_response r));
  (match Client.call c Proto.Stats with
  | Proto.Stats_are s ->
    Alcotest.(check int) "stats entries" 3 s.Proto.st_entries;
    Alcotest.(check int) "stats sessions" 1 s.Proto.st_sessions
  | r -> Alcotest.failf "stats failed: %s" (Proto.render_response r));
  (* garbage in, Rejected out — the server never throws at the client *)
  (match
     Proto.decode_response
       (Server.handle server ~session:(Client.session c)
          (Bytes.of_string "NOTMAGIC\x01\x01\x00\x00\x00\x00"))
   with
  | Proto.Rejected reason ->
    Testutil.check_contains ~what:"rejection reason" reason "malformed"
  | r -> Alcotest.failf "garbage was answered: %s" (Proto.render_response r));
  (* unknown session ids are rejected, not fatal *)
  (match
     Proto.decode_response
       (Server.handle server ~session:999
          (Proto.encode_request (Proto.Subscribe Q.empty)))
   with
  | Proto.Rejected reason ->
    Testutil.check_contains ~what:"rejection reason" reason "unknown session"
  | r -> Alcotest.failf "bad session was accepted: %s" (Proto.render_response r));
  (match Client.call c (Proto.Unsubscribe 7) with
  | Proto.Rejected _ -> ()
  | r -> Alcotest.failf "bogus unsubscribe accepted: %s" (Proto.render_response r));
  Client.close c;
  Client.close c;  (* idempotent *)
  let dump = Obs.Registry.to_json_lines metrics in
  Testutil.check_contains ~what:"metrics dump" dump "serve_requests_total";
  Testutil.check_contains ~what:"metrics dump" dump "\"kind\":\"query\"";
  Testutil.check_contains ~what:"metrics dump" dump "\"kind\":\"malformed\"";
  Testutil.check_contains ~what:"metrics dump" dump "serve_request_seconds"

let test_concurrent_clients () =
  (* hammer one server from several domains through the full wire path;
     per-kind counters must account for every request *)
  let store = sample_store () in
  let metrics = Obs.Registry.create () in
  let server = Server.create ~metrics ~store () in
  let per_client = 200 in
  let run _ =
    let c = Client.connect server in
    for i = 1 to per_client do
      match
        Client.call c
          (if i mod 2 = 0 then Proto.Query Q.empty
           else Proto.Count Q.(empty |> min_visibility 2))
      with
      | Proto.Entries _ | Proto.Count_is _ -> ()
      | r -> Alcotest.failf "call failed: %s" (Proto.render_response r)
    done;
    Client.close c;
    per_client
  in
  let totals = Exec.Pool.map ~jobs:4 run (Array.init 4 Fun.id) in
  Alcotest.(check int) "all calls returned" (4 * per_client)
    (Array.fold_left ( + ) 0 totals);
  let v kind =
    Obs.Registry.counter_value metrics ~labels:[ ("kind", kind) ]
      "serve_requests_total"
  in
  Alcotest.(check int) "every request counted" (4 * per_client)
    (v "query" + v "count");
  Alcotest.(check int) "no sessions leak" 0 (Server.session_count server)

let () =
  Alcotest.run "serve"
    [
      ( "proto",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "request corruption rejected" `Quick
            test_request_rejects_corruption;
          Alcotest.test_case "response corruption rejected" `Quick
            test_response_rejects_corruption;
          prop_mutated_frames_never_crash;
          prop_single_octet_corruption_caught;
        ] );
      ( "query",
        [
          prop_builder_parse_equivalence;
          prop_query_wire_roundtrip;
          Alcotest.test_case "builder validation" `Quick
            test_builder_validation;
        ] );
      ( "tail",
        [
          Alcotest.test_case "subscription delivery ordering" `Quick
            test_subscription_delivery_ordering;
          Alcotest.test_case "whole episode in one batch" `Quick
            test_tail_within_one_batch;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "deadline budget" `Quick test_deadline_budget;
          Alcotest.test_case "overload shedding" `Quick test_overload_shed;
          Alcotest.test_case "queue shedding and eviction" `Quick
            test_queue_shed_and_evict;
        ] );
      ( "retry",
        [
          Alcotest.test_case "transient then success" `Quick
            test_retry_transient_then_success;
          Alcotest.test_case "exhaustion raises Failed" `Quick
            test_retry_exhaustion_raises;
          Alcotest.test_case "no blind retry of subscribe" `Quick
            test_no_blind_retry_of_subscribe;
          Alcotest.test_case "subscribe retried after pre-exec refusal"
            `Quick test_subscribe_retried_after_preexec_refusal;
          Alcotest.test_case "per-call timeout" `Quick test_call_timeout;
        ] );
      ( "integration",
        [
          Alcotest.test_case "client/server smoke" `Quick test_serve_smoke;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients;
        ] );
    ]
