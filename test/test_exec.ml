(* Tests for Exec.Pool, the deterministic domain pool behind the
   experiment sweeps: order preservation, exception propagation, the
   jobs-count-invariance contract, and end-to-end sweep determinism. *)

module Pool = Exec.Pool

exception Boom of int

let test_map_is_array_map () =
  let input = Array.init 100 (fun i -> i) in
  let f i = (i * i) + 7 in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d equals Array.map" jobs)
        (Array.map f input)
        (Pool.map ~jobs f input))
    [ 1; 2; 3; 4; 8; 100; 200 ]

let test_map_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~jobs:4 succ [||]);
  Alcotest.(check (array int)) "singleton" [| 2 |] (Pool.map ~jobs:4 succ [| 1 |])

let test_map_list () =
  Alcotest.(check (list string))
    "map_list preserves order"
    [ "0"; "1"; "2"; "3"; "4" ]
    (Pool.map_list ~jobs:3 string_of_int [ 0; 1; 2; 3; 4 ])

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      match Pool.map ~jobs (fun i -> if i = 13 then raise (Boom i) else i)
              (Array.init 64 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 13 -> ())
    [ 1; 4 ]

let test_default_jobs_env () =
  let original = Sys.getenv_opt "MOAS_JOBS" in
  let restore () =
    match original with
    | Some v -> Unix.putenv "MOAS_JOBS" v
    | None -> Unix.putenv "MOAS_JOBS" ""
  in
  Fun.protect ~finally:restore @@ fun () ->
  Unix.putenv "MOAS_JOBS" "3";
  Alcotest.(check int) "MOAS_JOBS honoured" 3 (Pool.default_jobs ());
  Unix.putenv "MOAS_JOBS" "not-a-number";
  Alcotest.(check bool) "garbage falls back to a sane count" true
    (Pool.default_jobs () >= 1);
  Unix.putenv "MOAS_JOBS" "0";
  Alcotest.(check bool) "non-positive falls back" true
    (Pool.default_jobs () >= 1)

let prop_map_matches_sequential =
  Testutil.qtest ~count:100 "pool map equals sequential map for any jobs"
    QCheck2.Gen.(pair (int_range 1 9) (list_size (int_range 0 50) int))
    (fun (jobs, xs) ->
      let arr = Array.of_list xs in
      let f x = (x * 31) lxor 5 in
      Pool.map ~jobs f arr = Array.map f arr)

(* the tentpole contract end to end: a whole sweep point — means, standard
   errors, detection rates — is identical whatever the job count *)
let test_sweep_identical_across_jobs () =
  let cfg =
    Experiments.Sweep.config ~origin_selections:2 ~attacker_selections:2
      ~topology:(Topology.Paper_topologies.topology_25 ())
      ~n_origins:1 ~deployment:Moas.Deployment.Full ()
  in
  let sequential = Experiments.Sweep.run ~jobs:1 cfg ~n_attackers_list:[ 2; 4 ] in
  let parallel = Experiments.Sweep.run ~jobs:4 cfg ~n_attackers_list:[ 2; 4 ] in
  Alcotest.(check bool) "points byte-identical at jobs 1 and 4" true
    (sequential = parallel)

let test_robustness_identical_across_jobs () =
  let topology = Topology.Paper_topologies.topology_25 () in
  let a = Experiments.Robustness.partition_study ~runs:3 ~jobs:1 ~topology () in
  let b = Experiments.Robustness.partition_study ~runs:3 ~jobs:4 ~topology () in
  Alcotest.(check bool) "partition points identical at jobs 1 and 4" true
    (a = b)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "equals Array.map" `Quick test_map_is_array_map;
          Alcotest.test_case "empty + singleton" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "MOAS_JOBS default" `Quick test_default_jobs_env;
        ] );
      ("properties", [ prop_map_matches_sequential ]);
      ( "sweeps",
        [
          Alcotest.test_case "sweep invariant in jobs" `Slow
            test_sweep_identical_across_jobs;
          Alcotest.test_case "robustness invariant in jobs" `Slow
            test_robustness_identical_across_jobs;
        ] );
    ]
