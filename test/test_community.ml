(* Tests for the community-telemetry detection backend: the usage-policy
   model (lib/bgp), the Community_watch dynamics rules (lib/core) and the
   head-to-head evaluation (lib/experiments). *)

open Net
module Community = Bgp.Community
module Cpolicy = Bgp.Community_policy
module Watch = Moas.Community_watch

let victim = Testutil.victim

(* ---------------- well-known rendering ---------------- *)

let test_well_known_rendering () =
  List.iter
    (fun (c, expected) ->
      Alcotest.(check string) expected expected (Community.to_string c))
    [
      (Community.no_export, "NO_EXPORT");
      (Community.no_advertise, "NO_ADVERTISE");
      (Community.no_export_subconfed, "NO_EXPORT_SUBCONFED");
      (Community.blackhole, "BLACKHOLE");
    ];
  Alcotest.(check string) "ordinary value renders asn:value" "64512:100"
    (Community.to_string (Community.make (Asn.make 64512) 100));
  (* reserved-range values without an assigned name keep the numeric form *)
  Alcotest.(check string) "unassigned reserved value" "65535:999"
    (Community.to_string (Community.make Community.well_known_asn 999));
  Alcotest.(check bool) "ordinary value has no name" true
    (Community.well_known_name (Community.make (Asn.make 7) 100) = None);
  Alcotest.(check bool) "NO_EXPORT is 65535:65281" true
    (Community.equal Community.no_export
       (Community.make Community.well_known_asn 0xff01))

(* ---------------- usage-class assignment ---------------- *)

let topo () = Topology.Paper_topologies.topology_25 ()

let test_class_determinism () =
  let t = topo () in
  let mk seed =
    Cpolicy.make ~scrub_fraction:0.5 ~seed ~transit:t.Topology.Paper_topologies.transit
      t.Topology.Paper_topologies.graph
  in
  let a = mk 42L and b = mk 42L in
  Asn.Set.iter
    (fun asn ->
      Alcotest.(check string)
        (Printf.sprintf "class of AS%s stable" (Asn.to_string asn))
        (Cpolicy.class_to_string (Cpolicy.class_of a asn))
        (Cpolicy.class_to_string (Cpolicy.class_of b asn));
      Alcotest.(check int)
        (Printf.sprintf "region of AS%s stable" (Asn.to_string asn))
        (Cpolicy.region_of a asn) (Cpolicy.region_of b asn))
    (Topology.As_graph.nodes t.Topology.Paper_topologies.graph);
  Alcotest.(check bool) "tallies agree" true (Cpolicy.tally a = Cpolicy.tally b);
  (* every class is exercised at this scrub fraction *)
  List.iter
    (fun (cls, n) ->
      Alcotest.(check bool)
        (Cpolicy.class_to_string cls ^ " class populated")
        true (n > 0))
    (Cpolicy.tally a);
  (* transit ASes never land in the stub classes and vice versa *)
  Asn.Set.iter
    (fun asn ->
      let transit = Asn.Set.mem asn t.Topology.Paper_topologies.transit in
      match Cpolicy.class_of a asn with
      | Cpolicy.Path | Cpolicy.Scrub ->
        Alcotest.(check bool) "tag-rewriting class is transit" true transit
      | Cpolicy.Location | Cpolicy.Blackhole ->
        Alcotest.(check bool) "stamping class is a stub" true (not transit))
    (Topology.As_graph.nodes t.Topology.Paper_topologies.graph)

let test_force_class () =
  let t = topo () in
  let model =
    Cpolicy.make ~seed:7L ~transit:t.Topology.Paper_topologies.transit
      t.Topology.Paper_topologies.graph
  in
  Alcotest.(check bool) "no scrubbers by default" true
    (Asn.Set.is_empty (Cpolicy.scrubbers model));
  let chosen = Asn.Set.of_list [ 4; 226 ] in
  let forced = Cpolicy.force_class model chosen Cpolicy.Scrub in
  Alcotest.(check bool) "forced set is exactly the scrub set" true
    (Asn.Set.equal chosen (Cpolicy.scrubbers forced));
  Alcotest.(check bool) "original model untouched" true
    (Asn.Set.is_empty (Cpolicy.scrubbers model))

(* ---------------- scrubbing semantics ---------------- *)

let test_scrub_export () =
  let t = topo () in
  let self = Asn.make 4 and peer = Asn.make 226 in
  let model =
    Cpolicy.force_class
      (Cpolicy.make ~seed:7L ~transit:t.Topology.Paper_topologies.transit
         t.Topology.Paper_topologies.graph)
      (Asn.Set.singleton self) Cpolicy.Scrub
  in
  let policy = Cpolicy.policy model self in
  let own = Community.make self 201 in
  let foreign = Community.make (Asn.make 7) 105 in
  let moas = Testutil.moas_communities [ 1; 9 ] in
  let communities =
    Community.Set.add own (Community.Set.add foreign moas)
  in
  (* a transit route: learned from a peer, then re-exported *)
  let transit_route =
    Testutil.route ~communities ~from:(Asn.to_int peer)
      [ Asn.to_int peer; 9 ]
  in
  (match policy.Bgp.Policy.export ~peer transit_route with
  | None -> Alcotest.fail "scrubber filtered the route itself"
  | Some r ->
    Alcotest.(check bool) "exactly the self-tag survives" true
      (Community.Set.equal r.Bgp.Route.communities
         (Community.Set.singleton own));
    Alcotest.(check bool) "the MOAS list is gone" true
      (Community.Set.is_empty
         (Community.Set.inter r.Bgp.Route.communities moas)));
  (* the scrubber's own origination is exempt: its communities pass *)
  let originated =
    Bgp.Route.originate ~communities:moas ~self victim
  in
  match policy.Bgp.Policy.export ~peer originated with
  | None -> Alcotest.fail "origination filtered"
  | Some r ->
    Alcotest.(check bool) "own origination keeps its communities" true
      (Community.Set.subset moas r.Bgp.Route.communities)

let test_scrub_import_tags_ingress () =
  let t = topo () in
  let self = Asn.make 4 and peer = Asn.make 226 in
  let model =
    Cpolicy.force_class
      (Cpolicy.make ~seed:7L ~transit:t.Topology.Paper_topologies.transit
         t.Topology.Paper_topologies.graph)
      (Asn.Set.singleton self) Cpolicy.Scrub
  in
  let policy = Cpolicy.policy model self in
  let route = Testutil.route ~from:(Asn.to_int peer) [ Asn.to_int peer ] in
  match policy.Bgp.Policy.import ~peer route with
  | None -> Alcotest.fail "import rejected"
  | Some r ->
    let expected = Cpolicy.ingress_tag model ~self ~peer in
    Alcotest.(check bool) "ingress tag stamped on import" true
      (Community.Set.mem expected r.Bgp.Route.communities);
    Alcotest.(check bool) "ingress tag is in the reserved window" true
      (Cpolicy.is_tag_value expected.Community.value)

(* ---------------- watch rules ---------------- *)

let tag asn value = Community.Set.singleton (Community.make (Asn.make asn) value)

let reasons_of anomalies = List.map (fun a -> a.Watch.a_reason) anomalies

let test_watch_warmup_absorbs () =
  let w = Watch.create ~warmup_until:10.0 ~self:(Asn.make 99) () in
  Alcotest.(check int)
    "pre-warmup observation is silent" 0
    (List.length
       (Watch.observe_route w ~now:1.0 ~prefix:victim ~origin:(Asn.make 1)
          (tag 1 100)));
  (* the absorbed profile still counts: a post-warmup stranger fires *)
  let found =
    Watch.observe_route w ~now:11.0 ~prefix:victim ~origin:(Asn.make 66)
      (tag 66 101)
  in
  Alcotest.(check bool) "tagger churn after warmup" true
    (reasons_of found = [ Watch.Tagger_churn ])

let test_watch_dedup () =
  (* scrub-event can recur — a prefix keeps arriving bare — but each
     (prefix, reason, origin) alarms exactly once *)
  let w = Watch.create ~self:(Asn.make 99) () in
  let opening =
    Watch.observe_route w ~now:0.0 ~prefix:victim ~origin:(Asn.make 1)
      (tag 1 100)
  in
  Alcotest.(check bool) "first warm stranger is tagger churn" true
    (reasons_of opening = [ Watch.Tagger_churn ]);
  let first =
    Watch.observe_route w ~now:1.0 ~prefix:victim ~origin:(Asn.make 1)
      Community.Set.empty
  in
  Alcotest.(check bool) "scrub event fires once" true
    (reasons_of first = [ Watch.Scrub_event ]);
  let again =
    Watch.observe_route w ~now:2.0 ~prefix:victim ~origin:(Asn.make 1)
      Community.Set.empty
  in
  Alcotest.(check int) "deduplicated per (prefix, reason, origin)" 0
    (List.length again);
  Alcotest.(check int) "two anomalies total" 2 (Watch.anomaly_count w)

let test_watch_origin_retag () =
  let w = Watch.create ~self:(Asn.make 99) () in
  ignore
    (Watch.observe_route w ~now:0.0 ~prefix:victim ~origin:(Asn.make 1)
       (tag 1 100));
  (* the origin's own stamp flips to a different nonempty set *)
  let found =
    Watch.observe_route w ~now:1.0 ~prefix:victim ~origin:(Asn.make 1)
      (tag 1 107)
  in
  Alcotest.(check bool) "origin retag fires" true
    (List.mem Watch.Origin_retag (reasons_of found))

let test_watch_scrub_event () =
  let w = Watch.create ~self:(Asn.make 99) () in
  ignore
    (Watch.observe_route w ~now:0.0 ~prefix:victim ~origin:(Asn.make 1)
       (tag 1 100));
  let found =
    Watch.observe_route w ~now:1.0 ~prefix:victim ~origin:(Asn.make 1)
      Community.Set.empty
  in
  Alcotest.(check bool) "bare arrival from a carrier prefix fires" true
    (reasons_of found = [ Watch.Scrub_event ])

let test_watch_path_inconsistency () =
  let w = Watch.create ~warmup_until:0.5 ~self:(Asn.make 99) () in
  let path = Asn.Set.of_list [ 1; 2 ] in
  (* build the profile during warmup so the stranger-origin rule stays out
     of the way: this test isolates the path rule *)
  ignore
    (Watch.observe_route w ~now:0.0 ~prefix:victim ~origin:(Asn.make 1)
       ~path (tag 1 100));
  Alcotest.(check int)
    "on-path tag is fine" 0
    (List.length
       (Watch.observe_route w ~now:1.0 ~prefix:victim ~origin:(Asn.make 1)
          ~path (tag 2 100)));
  let found =
    Watch.observe_route w ~now:2.0 ~prefix:victim ~origin:(Asn.make 1) ~path
      (tag 77 150)
  in
  Alcotest.(check bool) "off-path tagger fires" true
    (List.mem Watch.Path_inconsistency (reasons_of found))

let test_watch_ignores_list_and_reserved () =
  (* MOAS-list members and the RFC 1997 reserved range are not telemetry:
     a new origin carrying only those must not trip the dynamics *)
  let w = Watch.create ~self:(Asn.make 99) () in
  ignore
    (Watch.observe_route w ~now:0.0 ~prefix:victim ~origin:(Asn.make 1)
       (tag 1 100));
  let noise =
    Community.Set.add Community.no_export (Testutil.moas_communities [ 66 ])
  in
  (* bare-while-profiled still applies, so give it one real known value *)
  let found =
    Watch.observe_route w ~now:1.0 ~prefix:victim ~origin:(Asn.make 66)
      (Community.Set.union noise (tag 1 100))
  in
  Alcotest.(check int) "list members and well-knowns ignored" 0
    (List.length found)

(* ---------------- archive replay: the two fault events ---------------- *)

module Srv = Measurement.Synthetic_routeviews
module Src = Stream.Source

let archive_params =
  {
    Srv.default_params with
    Srv.universe_size = 400;
    initial_long_lived = 65;
    final_long_lived = 139;
    one_day_churn = 24;
    medium_churn = 9;
    event_1998_size = 114;
    event_2001_size = 97;
  }

let test_archive_fault_events_dominate () =
  (* Replay the synthetic RouteViews archive through the watch with a
     synthesized location tag per origin (the archive records no
     community attributes).  The two injected faults — 1998-04-07 and
     2001-04-06 — put a stranger AS behind hundreds of prefixes at once,
     so those two days must lead the anomaly tally. *)
  let stamp origin =
    Community.Set.singleton
      (Community.make origin (100 + (Asn.to_int origin mod 8)))
  in
  let _, per_day =
    Src.fold_archive archive_params ~init:(None, [])
      ~f:(fun (watch, tally) batch ->
        let w =
          match watch with
          | Some w -> w
          | None ->
            (* warm up on the opening table: day one only builds state *)
            Watch.create
              ~warmup_until:(float_of_int (batch.Src.time + 1))
              ~self:(Asn.make 0) ()
        in
        let now = float_of_int batch.Src.time in
        let count = ref 0 in
        Array.iter
          (fun ev ->
            match ev.Stream.Monitor.action with
            | Stream.Monitor.Announce { origin; _ } ->
              count :=
                !count
                + List.length
                    (Watch.observe_route w ~now
                       ~prefix:ev.Stream.Monitor.prefix ~origin
                       (stamp origin))
            | Stream.Monitor.Withdraw _ -> ())
          batch.Src.events;
        let tally =
          match batch.Src.day with
          | Some day when !count > 0 -> (day, !count) :: tally
          | _ -> tally
        in
        (Some w, tally))
  in
  let ranked =
    List.sort (fun (_, a) (_, b) -> compare b a) (List.rev per_day)
  in
  match ranked with
  | (d1, n1) :: (d2, n2) :: _ ->
    let top2 = List.sort compare [ d1; d2 ] in
    let events = List.sort compare [ Srv.event_1998; Srv.event_2001 ] in
    Alcotest.(check (list int))
      (Printf.sprintf "top anomaly days (%d and %d alarms) are the faults"
         n1 n2)
      events top2
  | _ -> Alcotest.fail "fewer than two anomalous days"

(* ---------------- head-to-head determinism ---------------- *)

let test_evaluation_deterministic_across_jobs () =
  let r1 = Experiments.Community.report ~smoke:true ~jobs:1 () in
  let r4 = Experiments.Community.report ~smoke:true ~jobs:4 () in
  Alcotest.(check string) "jobs 1 and 4 render byte-identically" r1 r4

let test_scrubbing_gap () =
  let result = Experiments.Community.evaluate ~smoke:true ~jobs:2 () in
  Alcotest.(check bool)
    "moas-list blind and community firing under scrubbing" true
    (Experiments.Community.scrubbing_gap_holds result);
  (* the scrubbed arm actually scrubbed something *)
  Alcotest.(check bool) "scrub counters nonzero" true
    (result.Experiments.Community.r_scrubbed_values > 0);
  Alcotest.(check bool) "watch observed events" true
    (result.Experiments.Community.r_events > 0)

let () =
  Alcotest.run "community"
    [
      ( "rendering",
        [ Alcotest.test_case "well-known names" `Quick test_well_known_rendering ] );
      ( "usage model",
        [
          Alcotest.test_case "classes deterministic from seed" `Quick
            test_class_determinism;
          Alcotest.test_case "force_class" `Quick test_force_class;
          Alcotest.test_case "scrub export drops exactly foreign values"
            `Quick test_scrub_export;
          Alcotest.test_case "scrub import stamps ingress" `Quick
            test_scrub_import_tags_ingress;
        ] );
      ( "watch rules",
        [
          Alcotest.test_case "warmup absorbs" `Quick test_watch_warmup_absorbs;
          Alcotest.test_case "alarm dedup" `Quick test_watch_dedup;
          Alcotest.test_case "origin retag" `Quick test_watch_origin_retag;
          Alcotest.test_case "scrub event" `Quick test_watch_scrub_event;
          Alcotest.test_case "path inconsistency" `Quick
            test_watch_path_inconsistency;
          Alcotest.test_case "list members ignored" `Quick
            test_watch_ignores_list_and_reserved;
        ] );
      ( "archive replay",
        [
          Alcotest.test_case "fault days lead the anomaly tally" `Quick
            test_archive_fault_events_dominate;
        ] );
      ( "head-to-head",
        [
          Alcotest.test_case "deterministic across jobs" `Quick
            test_evaluation_deterministic_across_jobs;
          Alcotest.test_case "scrubbing gap holds" `Quick test_scrubbing_gap;
        ] );
    ]
