(* Tests for the observability layer: the metrics registry (counters,
   gauges, histograms, labels, exporters), tracing spans, and the
   integration with the instrumented simulation engine. *)

module R = Obs.Registry
module Span = Obs.Span

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_merge () =
  let a = R.create () in
  let b = R.create () in
  R.Counter.add (R.counter a "events") 10;
  R.Counter.add (R.counter b "events") 32;
  R.Counter.add (R.counter b ~labels:[ ("as", "7") ] "sent") 5;
  R.Gauge.set (R.gauge a "depth") 2.0;
  R.Gauge.set (R.gauge b "depth") 1.5;
  let ha = R.histogram a ~buckets:[ 1.0; 10.0 ] "lat" in
  let hb = R.histogram b ~buckets:[ 1.0; 10.0 ] "lat" in
  List.iter (R.Histogram.observe ha) [ 0.5; 5.0 ];
  List.iter (R.Histogram.observe hb) [ 0.7; 50.0 ];
  R.merge ~into:a b;
  Alcotest.(check int) "counters add" 42 (R.counter_value a "events");
  Alcotest.(check int) "missing counter created" 5
    (R.counter_value a ~labels:[ ("as", "7") ] "sent");
  Alcotest.(check (float 1e-9)) "gauges add" 3.5
    (R.Gauge.value (R.gauge a "depth"));
  Alcotest.(check int) "histogram count" 4 (R.Histogram.count ha);
  Alcotest.(check (float 1e-9)) "histogram sum" 56.2 (R.Histogram.sum ha);
  Alcotest.(check (list (pair (float 0.0) int)))
    "histogram buckets add"
    [ (1.0, 2); (10.0, 1); (infinity, 1) ]
    (R.Histogram.buckets ha);
  (* the source is left untouched and noop merges are inert *)
  Alcotest.(check int) "source unchanged" 32 (R.counter_value b "events");
  R.merge ~into:a R.noop;
  R.merge ~into:R.noop b;
  Alcotest.(check int) "noop merge inert" 42 (R.counter_value a "events");
  Alcotest.check_raises "bound mismatch rejected"
    (Invalid_argument "Registry.merge: lat has different bucket bounds")
    (fun () ->
      let c = R.create () in
      ignore (R.histogram c ~buckets:[ 2.0; 3.0 ] "lat");
      R.merge ~into:a c)

let test_counter () =
  let reg = R.create () in
  let c = R.counter reg "updates" in
  R.Counter.incr c;
  R.Counter.add c 4;
  Alcotest.(check int) "value" 5 (R.Counter.value c);
  Alcotest.(check int) "counter_value" 5 (R.counter_value reg "updates");
  Alcotest.check_raises "negative add"
    (Invalid_argument "Registry.Counter.add: negative increment") (fun () ->
      R.Counter.add c (-1))

let test_gauge () =
  let reg = R.create () in
  let g = R.gauge reg "depth" in
  R.Gauge.set g 3.0;
  R.Gauge.add g 1.5;
  Alcotest.(check (float 1e-9)) "set+add" 4.5 (R.Gauge.value g);
  R.Gauge.observe_max g 2.0;
  Alcotest.(check (float 1e-9)) "max keeps larger" 4.5 (R.Gauge.value g);
  R.Gauge.observe_max g 9.0;
  Alcotest.(check (float 1e-9)) "max takes larger" 9.0 (R.Gauge.value g)

let test_histogram () =
  let reg = R.create () in
  let h = R.histogram reg ~buckets:[ 1.0; 10.0 ] "lat" in
  List.iter (R.Histogram.observe h) [ 0.5; 0.7; 5.0; 50.0 ];
  Alcotest.(check int) "count" 4 (R.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 56.2 (R.Histogram.sum h);
  Alcotest.(check (list (pair (float 0.0) int)))
    "buckets"
    [ (1.0, 2); (10.0, 1); (infinity, 1) ]
    (R.Histogram.buckets h);
  Alcotest.check_raises "unsorted buckets"
    (Invalid_argument "Registry.histogram: bucket bounds must be increasing")
    (fun () -> ignore (R.histogram reg ~buckets:[ 2.0; 1.0 ] "bad"))

let test_same_instrument () =
  let reg = R.create () in
  let a = R.counter reg ~labels:[ ("as", "7") ] "sent" in
  (* same name+labels (any label order) -> the same underlying counter *)
  let b = R.counter reg ~labels:[ ("as", "7") ] "sent" in
  R.Counter.incr a;
  R.Counter.incr b;
  Alcotest.(check int) "shared" 2 (R.Counter.value a);
  (* different labels -> a distinct series *)
  let c = R.counter reg ~labels:[ ("as", "9") ] "sent" in
  R.Counter.incr c;
  Alcotest.(check int) "distinct series" 1
    (R.counter_value reg ~labels:[ ("as", "9") ] "sent");
  Alcotest.(check int) "sum over label sets" 3 (R.sum_counters reg "sent")

let test_kind_mismatch () =
  let reg = R.create () in
  ignore (R.counter reg "x");
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Registry: x is already a counter, not a gauge")
    (fun () -> ignore (R.gauge reg "x"))

let test_noop () =
  let reg = R.noop in
  Alcotest.(check bool) "is_noop" true (R.is_noop reg);
  Alcotest.(check bool) "live is not noop" false (R.is_noop (R.create ()));
  let c = R.counter reg "sent" in
  R.Counter.incr c;
  Alcotest.(check int) "updates discarded" 0 (R.Counter.value c);
  let g = R.gauge reg "depth" in
  R.Gauge.set g 5.0;
  Alcotest.(check (float 0.0)) "gauge inert" 0.0 (R.Gauge.value g);
  Alcotest.(check int) "no samples" 0 (List.length (R.samples reg));
  Alcotest.(check string) "no json" "" (R.to_json_lines reg)

let test_samples_sorted () =
  let reg = R.create () in
  ignore (R.gauge reg "zeta");
  ignore (R.counter reg ~labels:[ ("as", "9") ] "alpha");
  ignore (R.counter reg ~labels:[ ("as", "10") ] "alpha");
  let names =
    List.map
      (fun s -> (s.R.name, s.R.labels))
      (R.samples reg)
  in
  Alcotest.(check (list (pair string (list (pair string string)))))
    "sorted by name then labels"
    [
      ("alpha", [ ("as", "10") ]);
      ("alpha", [ ("as", "9") ]);
      ("zeta", []);
    ]
    names

let test_json_lines () =
  let reg = R.create () in
  let c = R.counter reg ~labels:[ ("as", "7") ] "sent" in
  R.Counter.add c 3;
  R.Gauge.set (R.gauge reg "wall") 0.25;
  Alcotest.(check string) "lines"
    "{\"metric\":\"sent\",\"labels\":{\"as\":\"7\",\"workload\":\"46-AS\"},\"type\":\"counter\",\"value\":3}\n\
     {\"metric\":\"wall\",\"labels\":{\"workload\":\"46-AS\"},\"type\":\"gauge\",\"value\":0.25}\n"
    (R.to_json_lines ~extra:[ ("workload", "46-AS") ] reg)

let test_csv_and_clear () =
  let reg = R.create () in
  R.Counter.incr (R.counter reg "n");
  let header, rows = R.to_csv reg in
  Alcotest.(check (list string)) "header"
    [ "metric"; "labels"; "type"; "value" ] header;
  Alcotest.(check (list (list string))) "rows" [ [ "n"; ""; "counter"; "1" ] ]
    rows;
  R.clear reg;
  Alcotest.(check int) "cleared" 0 (List.length (R.samples reg))

(* ------------------------------------------------------------------ *)
(* Spans *)

(* a deterministic wall clock: advances one second per reading *)
let ticking_clock () =
  let now = ref 0.0 in
  fun () ->
    let v = !now in
    now := v +. 1.0;
    v

let test_span_records () =
  let tracer = Span.create ~clock:(ticking_clock ()) () in
  let sim = ref 10.0 in
  let result =
    Span.with_span tracer ~sim_clock:(fun () -> !sim) "outer" (fun () ->
        sim := 35.0;
        Span.with_span tracer "inner" (fun () -> ()) ;
        42)
  in
  Alcotest.(check int) "thunk result" 42 result;
  match Span.records tracer with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner name" "inner" inner.Span.name;
    Alcotest.(check int) "inner depth" 1 inner.Span.depth;
    Alcotest.(check string) "outer name" "outer" outer.Span.name;
    Alcotest.(check int) "outer depth" 0 outer.Span.depth;
    (* clock readings: outer start 0, inner 1 and 2, outer end 3 *)
    Alcotest.(check (float 1e-9)) "outer wall" 3.0 outer.Span.wall_s;
    Alcotest.(check (float 1e-9)) "inner wall" 1.0 inner.Span.wall_s;
    Alcotest.(check (float 1e-9)) "sim start" 10.0 outer.Span.sim_start;
    Alcotest.(check (float 1e-9)) "sim end" 35.0 outer.Span.sim_end
  | records ->
    Alcotest.failf "expected 2 records, got %d" (List.length records)

let test_span_records_on_raise () =
  let tracer = Span.create ~clock:(ticking_clock ()) () in
  (try
     Span.with_span tracer "boom" (fun () -> failwith "expected")
   with Failure _ -> ());
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length (Span.records tracer));
  Alcotest.(check int) "depth unwound: next span is top-level" 0
    (Span.with_span tracer "after" (fun () -> ());
     match List.rev (Span.records tracer) with
     | after :: _ -> after.Span.depth
     | [] -> -1)

let test_span_noop () =
  Alcotest.(check bool) "is_noop" true (Span.is_noop Span.noop);
  Alcotest.(check int) "thunk still runs" 7
    (Span.with_span Span.noop "x" (fun () -> 7));
  Alcotest.(check int) "nothing recorded" 0
    (List.length (Span.records Span.noop))

(* ------------------------------------------------------------------ *)
(* Engine integration: the instrumented hot path feeds the registry *)

let test_engine_metrics () =
  let reg = R.create () in
  let wall =
    let now = ref 0.0 in
    fun () ->
      now := !now +. 0.125;
      !now
  in
  let engine = Sim.Engine.create ~metrics:reg ~wall_clock:wall () in
  for i = 1 to 5 do
    Sim.Engine.schedule engine ~delay:(float_of_int i) (fun _ -> ())
  done;
  ignore (Sim.Engine.run engine);
  Alcotest.(check int) "events counter" 5
    (R.counter_value reg "sim_events_executed");
  Alcotest.(check int) "high-water accessor" 5
    (Sim.Engine.queue_high_water engine);
  let hwm =
    List.find_map
      (fun s ->
        match (s.R.name, s.R.value) with
        | "sim_queue_depth_hwm", R.Gauge v -> Some v
        | _ -> None)
      (R.samples reg)
  in
  Alcotest.(check (option (float 1e-9))) "high-water gauge" (Some 5.0) hwm;
  let wall_s =
    List.find_map
      (fun s ->
        match (s.R.name, s.R.value) with
        | "sim_run_wall_s", R.Gauge v -> Some v
        | _ -> None)
      (R.samples reg)
  in
  Alcotest.(check bool) "wall time recorded" true
    (match wall_s with Some v -> v > 0.0 | None -> false)

let test_network_metrics () =
  let a = Net.Asn.make 1 and b = Net.Asn.make 2 and c = Net.Asn.make 3 in
  let graph = Topology.As_graph.of_edges [ (a, b); (b, c) ] in
  let reg = R.create () in
  let net =
    Bgp.Network.make
      ~config:Bgp.Network.Config.(default |> with_metrics reg)
      graph
  in
  Bgp.Network.originate net a (Net.Prefix.of_string "10.0.0.0/8");
  ignore (Bgp.Network.run net);
  Alcotest.(check bool) "updates flowed" true
    (R.sum_counters reg "bgp_updates_sent" > 0);
  Alcotest.(check bool) "per-AS series exist" true
    (R.counter_value reg ~labels:[ ("as", "AS1") ] "bgp_updates_sent" > 0);
  Alcotest.(check bool) "decision process counted" true
    (R.sum_counters reg "bgp_decisions" > 0);
  Alcotest.(check int) "events flowed through the engine"
    (Sim.Engine.events_executed (Bgp.Network.engine net))
    (R.counter_value reg "sim_events_executed")

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "same instrument" `Quick test_same_instrument;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "noop" `Quick test_noop;
          Alcotest.test_case "sorted samples" `Quick test_samples_sorted;
          Alcotest.test_case "json lines" `Quick test_json_lines;
          Alcotest.test_case "csv + clear" `Quick test_csv_and_clear;
          Alcotest.test_case "merge" `Quick test_merge;
        ] );
      ( "span",
        [
          Alcotest.test_case "records" `Quick test_span_records;
          Alcotest.test_case "records on raise" `Quick test_span_records_on_raise;
          Alcotest.test_case "noop" `Quick test_span_noop;
        ] );
      ( "integration",
        [
          Alcotest.test_case "engine metrics" `Quick test_engine_metrics;
          Alcotest.test_case "network metrics" `Quick test_network_metrics;
        ] );
    ]
