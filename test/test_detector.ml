(* Tests for Moas.Detector: the consistency check packaged as a router
   validator, with and without the origin-verification oracle. *)

open Net
module D = Moas.Detector
module Ov = Moas.Origin_verification

let victim = Testutil.victim
let self = Asn.make 99

let legit_list = [ 10; 20 ]
let legit_communities = Testutil.moas_communities legit_list

let valid_route ?(from = 2) ?(origin = 10) () =
  Testutil.route ~communities:legit_communities ~from [ from; origin ]

let forged_route ?(from = 3) ?(attacker = 666) () =
  Testutil.route
    ~communities:(Testutil.moas_communities (attacker :: legit_list))
    ~from [ attacker ]

let oracle_with_record () =
  let oracle = Ov.create () in
  Ov.register oracle victim (Asn.Set.of_list legit_list);
  oracle

let test_consistent_routes_pass () =
  let d = D.create ~self () in
  let v = D.validator d in
  let routes = [ valid_route ~from:2 ~origin:10 (); valid_route ~from:3 ~origin:20 () ] in
  Alcotest.(check int) "all pass" 2 (List.length (v ~now:0.0 ~prefix:victim routes));
  Alcotest.(check int) "no alarm on valid MOAS" 0 (D.alarm_count d)

let test_conflict_alarms () =
  let d = D.create ~self () in
  let v = D.validator d in
  let routes = [ valid_route (); forged_route () ] in
  ignore (v ~now:5.0 ~prefix:victim routes);
  Alcotest.(check int) "one alarm" 1 (D.alarm_count d);
  match D.alarms d with
  | [ alarm ] ->
    Alcotest.check Testutil.prefix_testable "alarm prefix" victim
      alarm.Moas.Alarm.prefix;
    Alcotest.(check (float 1e-9)) "alarm time" 5.0 alarm.Moas.Alarm.time;
    Alcotest.(check int) "two conflicting lists" 2
      (List.length alarm.Moas.Alarm.conflicting_lists)
  | _ -> Alcotest.fail "expected exactly one alarm"

let test_detect_only_does_not_filter () =
  let d = D.create ~self () in
  let v = D.validator d in
  let routes = [ valid_route (); forged_route () ] in
  Alcotest.(check int) "without oracle nothing is removed" 2
    (List.length (v ~now:0.0 ~prefix:victim routes))

let test_oracle_filters_forged () =
  let oracle = oracle_with_record () in
  let d = D.create ~backend:(D.Oracle oracle) ~self () in
  let v = D.validator d in
  let kept = v ~now:0.0 ~prefix:victim [ valid_route (); forged_route () ] in
  Alcotest.(check int) "only the valid route survives" 1 (List.length kept);
  List.iter
    (fun r ->
      Alcotest.(check bool) "surviving origin is entitled" true
        (List.mem (Asn.to_int (Bgp.Route.origin_as ~self r)) legit_list))
    kept;
  Alcotest.(check int) "oracle was consulted once" 1 (Ov.query_count oracle)

let test_verdict_is_sticky () =
  let oracle = oracle_with_record () in
  let d = D.create ~backend:(D.Oracle oracle) ~self () in
  let v = D.validator d in
  ignore (v ~now:0.0 ~prefix:victim [ valid_route (); forged_route () ]);
  (* later the valid route disappears: the forged one must STILL be
     rejected, even though alone it looks consistent *)
  let kept = v ~now:1.0 ~prefix:victim [ forged_route () ] in
  Alcotest.(check int) "remembered verdict still filters" 0 (List.length kept);
  Alcotest.(check int) "no extra oracle query" 1 (Ov.query_count oracle)

let test_no_record_fails_open () =
  let oracle = Ov.create () in
  (* no MOASRR record for the prefix *)
  let d = D.create ~backend:(D.Oracle oracle) ~self () in
  let v = D.validator d in
  let kept = v ~now:0.0 ~prefix:victim [ valid_route (); forged_route () ] in
  Alcotest.(check int) "cannot verify: keep everything" 2 (List.length kept);
  Alcotest.(check int) "alarm still raised" 1 (D.alarm_count d)

let test_alarm_dedup () =
  let d = D.create ~self () in
  let v = D.validator d in
  let routes = [ valid_route (); forged_route () ] in
  ignore (v ~now:0.0 ~prefix:victim routes);
  ignore (v ~now:1.0 ~prefix:victim routes);
  ignore (v ~now:2.0 ~prefix:victim routes);
  Alcotest.(check int) "same conflict alarms once" 1 (D.alarm_count d);
  (* a different forged list is a new conflict *)
  ignore (v ~now:3.0 ~prefix:victim [ valid_route (); forged_route ~attacker:667 () ]);
  Alcotest.(check int) "new conflict, new alarm" 2 (D.alarm_count d)

let test_self_inconsistent_rejected_locally () =
  let d = D.create ~self () in
  let v = D.validator d in
  (* forged list omits the attacker's own origin: rejected without any
     second route and without an oracle *)
  let sneaky =
    Testutil.route ~communities:legit_communities ~from:3 [ 666 ]
  in
  let kept = v ~now:0.0 ~prefix:victim [ sneaky ] in
  Alcotest.(check int) "locally rejected" 0 (List.length kept)

let test_self_consistency_check_optional () =
  let d = D.create ~check_self_consistency:false ~self () in
  let v = D.validator d in
  let sneaky = Testutil.route ~communities:legit_communities ~from:3 [ 666 ] in
  Alcotest.(check int) "kept when the check is off" 1
    (List.length (v ~now:0.0 ~prefix:victim [ sneaky ]))

let test_missing_list_conflicts_with_list () =
  (* Section 4.3: a route whose list was dropped counts as {origin}; if the
     origin is legitimate the implicit list {10} still disagrees with
     {10,20}, raising a (false) alarm - but never hiding a real conflict *)
  let d = D.create ~self () in
  let v = D.validator d in
  let stripped = Testutil.route ~from:4 [ 4; 10 ] in
  ignore (v ~now:0.0 ~prefix:victim [ valid_route (); stripped ]);
  Alcotest.(check int) "dropped list raises an alarm" 1 (D.alarm_count d)

let test_on_alarm_callback () =
  let fired = ref [] in
  let d = D.create ~on_alarm:(fun a -> fired := a :: !fired) ~self () in
  let v = D.validator d in
  ignore (v ~now:0.0 ~prefix:victim [ valid_route (); forged_route () ]);
  Alcotest.(check int) "callback fired" 1 (List.length !fired)

let test_reset () =
  let d = D.create ~self () in
  let v = D.validator d in
  ignore (v ~now:0.0 ~prefix:victim [ valid_route (); forged_route () ]);
  D.reset d;
  Alcotest.(check int) "alarms cleared" 0 (D.alarm_count d);
  ignore (v ~now:1.0 ~prefix:victim [ valid_route (); forged_route () ]);
  Alcotest.(check int) "conflict alarms again after reset" 1 (D.alarm_count d)

(* property: with an oracle record, the surviving set never contains an
   unentitled origin once any conflict has been observed *)
let prop_soundness =
  Testutil.qtest ~count:100 "post-conflict filtering keeps only entitled origins"
    QCheck2.Gen.(list_size (int_range 1 6) (pair (int_range 1 200) bool))
    (fun specs ->
      let oracle = oracle_with_record () in
      let d = D.create ~backend:(D.Oracle oracle) ~self () in
      let v = D.validator d in
      let routes =
        List.mapi
          (fun i (asn, is_valid) ->
            if is_valid then valid_route ~from:(i + 1) ~origin:(if asn mod 2 = 0 then 10 else 20) ()
            else forged_route ~from:(i + 1) ~attacker:(300 + asn) ())
          specs
      in
      (* a conflict exists when the carried lists disagree; a set of
         identically-forged routes with no valid route in sight is
         undetectable by design (the paper's residual case) *)
      let distinct_lists =
        List.map (Moas.Moas_list.effective ~self) routes
        |> List.sort_uniq Asn.Set.compare
      in
      let kept = v ~now:0.0 ~prefix:victim routes in
      if List.length distinct_lists > 1 then
        List.for_all
          (fun r -> List.mem (Asn.to_int (Bgp.Route.origin_as ~self r)) legit_list)
          kept
      else List.length kept = List.length routes)

let () =
  Alcotest.run "detector"
    [
      ( "detection",
        [
          Alcotest.test_case "valid MOAS passes" `Quick test_consistent_routes_pass;
          Alcotest.test_case "conflict alarms" `Quick test_conflict_alarms;
          Alcotest.test_case "detect-only mode" `Quick test_detect_only_does_not_filter;
          Alcotest.test_case "oracle filters" `Quick test_oracle_filters_forged;
          Alcotest.test_case "verdict sticky" `Quick test_verdict_is_sticky;
          Alcotest.test_case "no record fails open" `Quick test_no_record_fails_open;
          Alcotest.test_case "alarm dedup" `Quick test_alarm_dedup;
        ] );
      ( "local checks",
        [
          Alcotest.test_case "self-inconsistent rejected" `Quick
            test_self_inconsistent_rejected_locally;
          Alcotest.test_case "check can be disabled" `Quick
            test_self_consistency_check_optional;
          Alcotest.test_case "dropped list raises alarm" `Quick
            test_missing_list_conflicts_with_list;
        ] );
      ( "bookkeeping",
        [
          Alcotest.test_case "on_alarm callback" `Quick test_on_alarm_callback;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ("properties", [ prop_soundness ]);
    ]
