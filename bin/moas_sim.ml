(* moas_sim: command-line driver that regenerates every figure and table of
   the paper, plus the ablations, from the reproduction libraries. *)

let say fmt = Printf.printf (fmt ^^ "\n%!")

let write_csv_opt out_dir figure =
  match out_dir with
  | None -> ()
  | Some dir ->
    let header, rows = Experiments.Figures.to_csv figure in
    let id = figure.Experiments.Figures.id in
    let name =
      String.concat ""
        (List.filter_map
           (fun c ->
             match c with
             | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Some (String.make 1 c)
             | _ -> None)
           (List.init (String.length id) (String.get id)))
    in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (String.lowercase_ascii name ^ ".csv") in
    Mutil.Csv.write_file ~path ~header rows;
    say "  wrote %s" path

let print_figures out_dir figures =
  List.iter
    (fun figure ->
      print_string (Experiments.Figures.render figure);
      write_csv_opt out_dir figure;
      print_newline ())
    figures

let run_fig4 () =
  let summary = Measurement.Report.run Measurement.Synthetic_routeviews.default_params in
  print_string (Measurement.Report.figure4_text summary);
  say "automatically flagged fault events:";
  print_string
    (Measurement.Anomaly.render (Measurement.Anomaly.spikes_of_summary summary))

let run_fig5 () =
  let summary = Measurement.Report.run Measurement.Synthetic_routeviews.default_params in
  print_string (Measurement.Report.figure5_text summary);
  print_string (Measurement.Report.summary_table summary)

let run_exp1 seed jobs out_dir =
  print_figures out_dir (Experiments.Figures.figure9 ?seed ?jobs ())

let run_exp2 seed jobs out_dir =
  print_figures out_dir (Experiments.Figures.figure10 ?seed ?jobs ())

let run_exp3 seed jobs out_dir =
  print_figures out_dir (Experiments.Figures.figure11 ?seed ?jobs ())

let run_summary seed jobs =
  print_string (Experiments.Figures.summary_table ?seed ?jobs ());
  say "";
  say "Qualitative claims under reproduction:";
  List.iter (fun c -> say "  - %s" c) Experiments.Paper.claims

let run_ablations jobs = print_string (Experiments.Ablation.render_all ?jobs ())

let run_compare () =
  print_string
    (Baselines.Comparison.render
       (Baselines.Comparison.head_to_head
          ~topology:(Topology.Paper_topologies.topology_46 ())
          ()))

let run_studies () =
  let t = Topology.Paper_topologies.topology_46 () in
  say "== DNS-based verification (Section 2 circular dependency) ==";
  print_string (Experiments.Dns_study.render (Experiments.Dns_study.study ~topology:t ()));
  say "";
  say "== Off-line monitor vantage study (Section 4.2) ==";
  print_string (Experiments.Vantage_study.render (Experiments.Vantage_study.study ~topology:t ()));
  say "";
  say "== Detection and convergence dynamics ==";
  print_string (Experiments.Convergence.render (Experiments.Convergence.study ~topology:t ()))

let run_simulate size n_origins n_attackers deployment policy seed runs =
  let topology =
    match size with
    | 25 -> Topology.Paper_topologies.topology_25 ()
    | 46 -> Topology.Paper_topologies.topology_46 ()
    | 63 -> Topology.Paper_topologies.topology_63 ()
    | n -> Topology.Paper_topologies.build ~seed:0x4d4f4153L ~target_size:n ()
  in
  let deployment =
    match String.lowercase_ascii deployment with
    | "none" | "off" -> Moas.Deployment.Disabled
    | "full" -> Moas.Deployment.Full
    | "half" -> Moas.Deployment.Fraction 0.5
    | s ->
      (match float_of_string_opt s with
      | Some f when f >= 0.0 && f <= 1.0 -> Moas.Deployment.Fraction f
      | _ -> failwith ("unknown deployment: " ^ s))
  in
  let policy_mode =
    match String.lowercase_ascii policy with
    | "shortest" | "shortest-path" -> Attack.Scenario.Shortest_path
    | "gao-rexford" | "gr" -> Attack.Scenario.Gao_rexford_inferred
    | s -> failwith ("unknown policy: " ^ s)
  in
  say "%s" (Topology.Paper_topologies.describe topology);
  say "deployment: %s; policy: %s; %d origin(s), %d attacker(s), %d run(s)"
    (Moas.Deployment.to_string deployment)
    policy n_origins n_attackers runs;
  let rows =
    List.init runs (fun run ->
        let rng = Mutil.Rng.create ~seed:(Int64.add seed (Int64.of_int run)) in
        let base =
          Attack.Scenario.random rng
            ~graph:topology.Topology.Paper_topologies.graph
            ~stub:topology.Topology.Paper_topologies.stub ~n_origins
            ~n_attackers ~deployment
        in
        let scenario = { base with Attack.Scenario.policy_mode } in
        let o = Attack.Scenario.run rng scenario in
        [
          string_of_int run;
          Mutil.Text_table.percent_cell ~decimals:2
            o.Attack.Scenario.fraction_adopting;
          string_of_int o.Attack.Scenario.alarm_count;
          (match o.Attack.Scenario.detection_latency with
          | Some l -> Printf.sprintf "%.2f" l
          | None -> "-");
          string_of_int o.Attack.Scenario.oracle_queries;
          string_of_int o.Attack.Scenario.updates_sent;
          string_of_bool o.Attack.Scenario.converged;
        ])
  in
  Mutil.Text_table.print
    ~header:
      [ "run"; "adoption"; "alarms"; "latency"; "oracle"; "updates"; "ok" ]
    rows

let run_robustness seed smoke jobs =
  print_string (Experiments.Robustness.report ?seed ~smoke ?jobs ())

(* a 1/10-size archive with the same phenomenology, for CI smoke runs *)
let smoke_monitor_params =
  {
    Measurement.Synthetic_routeviews.default_params with
    Measurement.Synthetic_routeviews.universe_size = 400;
    initial_long_lived = 65;
    final_long_lived = 139;
    one_day_churn = 24;
    medium_churn = 9;
    event_1998_size = 114;
    event_2001_size = 97;
  }

exception Monitor_stop

let run_monitor smoke jobs window annotate seed checkpoint checkpoint_every
    stop_after resume metrics_out =
  let params =
    let base =
      if smoke then smoke_monitor_params
      else Measurement.Synthetic_routeviews.default_params
    in
    match seed with
    | None -> base
    | Some seed -> { base with Measurement.Synthetic_routeviews.seed }
  in
  let annotate =
    match String.lowercase_ascii annotate with
    | "none" -> Stream.Source.no_annotation
    | "trusted" ->
      Stream.Source.trusted_annotator
        ~distrusted:
          (Net.Asn.Set.of_list
             [
               Measurement.Synthetic_routeviews.fault_as_1998;
               Measurement.Synthetic_routeviews.fault_as_2001;
             ])
        ()
    | s -> failwith ("unknown annotation policy: " ^ s)
  in
  let config = { Stream.Monitor.default_config with Stream.Monitor.window } in
  let metrics =
    if metrics_out = None then Obs.Registry.noop else Obs.Registry.create ()
  in
  if checkpoint_every <> None && checkpoint = None then
    failwith "--checkpoint-every needs --checkpoint FILE";
  let monitor, resume_time =
    match resume with
    | Some path ->
      let snap = Stream.Checkpoint.read_file path in
      (Stream.Sharded.of_snapshot ~metrics ?jobs snap, snap.Stream.Monitor.s_last_time)
    | None -> (Stream.Sharded.create ~metrics ?jobs config, min_int)
  in
  let write_checkpoint () =
    match checkpoint with
    | Some path -> Stream.Checkpoint.write_file path (Stream.Sharded.snapshot monitor)
    | None -> ()
  in
  let source = Stream.Source.of_archive ~annotate params in
  (try
     ignore
       (Stream.Sharded.ingest_source ~since:resume_time monitor source
          ~on_batch:(fun monitor _batch ->
            (* positivity is enforced by the pos_int converter at parse time *)
            (match checkpoint_every with
            | Some n when Stream.Sharded.day_count monitor mod n = 0 ->
              write_checkpoint ()
            | _ -> ());
            match stop_after with
            | Some n when Stream.Sharded.day_count monitor >= n ->
              raise Monitor_stop
            | _ -> ()))
   with Monitor_stop -> ());
  Stream.Source.close source;
  write_checkpoint ();
  print_string (Stream.Report.render (Stream.Sharded.snapshot monitor));
  match metrics_out with
  | None -> ()
  | Some path ->
    let merged = Stream.Sharded.metrics monitor in
    let oc = open_out path in
    output_string oc
      (Obs.Registry.to_json_lines
         ~extra:
           [
             ("workload", "monitor");
             ("jobs", string_of_int (Stream.Sharded.jobs monitor));
           ]
         merged);
    close_out oc;
    say "metrics dump written to %s" path

(* ------------------------------------------------------------------ *)
(* collect: the multi-vantage collector mesh *)

let collect_config = { Stream.Monitor.default_config with Stream.Monitor.window = 10_000 }

let run_collect_query store_path query_str =
  let store =
    match store_path with
    | Some path when Sys.file_exists path -> Collect.Store.read_file path
    | Some path -> failwith (Printf.sprintf "no episode store at %s" path)
    | None -> failwith "--query needs --store FILE"
  in
  let q =
    match Collect.Store.parse_query query_str with
    | Ok q -> q
    | Error msg -> failwith ("bad query: " ^ msg)
  in
  let hits = Collect.Store.query store q in
  say "query %S: %d of %d entries match" query_str (List.length hits)
    (Collect.Store.count store);
  print_string
    (Collect.Store.render
       (List.fold_left
          (fun t e -> Collect.Store.add e t)
          (Collect.Store.empty ~vantages:(Collect.Store.vantages store))
          hits))

let run_collect vantages jobs smoke seed store_path query metrics_out order =
  match query with
  | Some q -> run_collect_query store_path q
  | None ->
    let topology =
      if smoke then Topology.Paper_topologies.topology_25 ()
      else Topology.Paper_topologies.topology_46 ()
    in
    let seed = Option.value seed ~default:0xC011EC7L in
    let metrics =
      if metrics_out = None then Obs.Registry.noop else Obs.Registry.create ()
    in
    let arrange streams =
      match order with "reversed" -> List.rev streams | _ -> streams
    in
    let mesh streams =
      Collect.Mesh.run ~metrics ?jobs collect_config (arrange streams)
    in
    say "%s" (Topology.Paper_topologies.describe topology);
    (* arm 1: the healthy mesh *)
    let baseline =
      Collect.Scenario.capture ~metrics ~seed ~vantages topology
    in
    print_string (Collect.Scenario.describe baseline);
    let base_mesh = mesh baseline.Collect.Scenario.s_streams in
    say "merged view: %d events (%d duplicate observations collapsed)"
      base_mesh.Collect.Mesh.r_merged_events
      base_mesh.Collect.Mesh.r_duplicates;
    let base_corr = Collect.Correlator.of_result base_mesh in
    print_string (Collect.Correlator.render base_corr);
    (* arm 2: the same workload with the first vantage partitioned *)
    say "";
    say "-- partition arm: isolating the first vantage with lib/faults --";
    let partitioned =
      Collect.Scenario.capture ~metrics ~arm:Collect.Scenario.Partitioned ~seed
        ~vantages topology
    in
    print_string (Collect.Scenario.describe partitioned);
    let part_mesh = mesh partitioned.Collect.Scenario.s_streams in
    let part_corr = Collect.Correlator.of_result part_mesh in
    print_string (Collect.Correlator.render part_corr);
    (match partitioned.Collect.Scenario.s_isolated with
    | None -> ()
    | Some name ->
      let view result =
        Stream.Checkpoint.encode
          (List.assoc name result.Collect.Mesh.r_per_vantage)
      in
      say "isolated vantage %s diverged from its healthy-run view: %b" name
        (view base_mesh <> view part_mesh);
      let flagged =
        List.exists
          (fun (e : Collect.Correlator.entry) ->
            Net.Prefix.compare e.Collect.Correlator.x_prefix
              partitioned.Collect.Scenario.s_attacked
            = 0
            && not e.Collect.Correlator.x_clean)
          part_corr.Collect.Correlator.c_entries
      in
      say "merged correlator still flags the invalid-origin conflict: %b"
        flagged);
    (match store_path with
    | None -> ()
    | Some path ->
      Collect.Store.write_file path (Collect.Store.of_correlation base_corr);
      say "episode store written to %s" path);
    (match metrics_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Obs.Registry.to_json_lines
           ~extra:
             [
               ("workload", "collect");
               ("vantages", string_of_int vantages);
             ]
           metrics);
      close_out oc;
      say "metrics dump written to %s" path)

(* ------------------------------------------------------------------ *)
(* classify: learned per-episode verdicts over the scenario corpus *)

let run_classify smoke jobs seed features_out report_out metrics_out =
  let seed = Option.value seed ~default:0xC1A55L in
  let metrics =
    if metrics_out = None then Obs.Registry.noop else Obs.Registry.create ()
  in
  let ev = Classify.Eval.evaluate ~metrics ?jobs ~smoke ~seed () in
  let report = Classify.Eval.render ev.Classify.Eval.ev_report in
  print_string report;
  (match report_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc report;
    close_out oc;
    say "report written to %s" path);
  (match features_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Classify.Eval.features_csv ev.Classify.Eval.ev_corpus);
    close_out oc;
    say "feature matrix written to %s" path);
  match metrics_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc
      (Obs.Registry.to_json_lines ~extra:[ ("workload", "classify") ] metrics);
    close_out oc;
    say "metrics dump written to %s" path

(* ------------------------------------------------------------------ *)
(* community: the community-telemetry detector head-to-head *)

let run_community smoke jobs seed report_out metrics_out =
  let seed = Option.value seed ~default:Experiments.Community.default_seed in
  let metrics =
    if metrics_out = None then Obs.Registry.noop else Obs.Registry.create ()
  in
  let report = Experiments.Community.report ~metrics ?jobs ~smoke ~seed () in
  print_string report;
  (match report_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc report;
    close_out oc;
    say "report written to %s" path);
  match metrics_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc
      (Obs.Registry.to_json_lines
         ~extra:[ ("workload", "community") ]
         metrics);
    close_out oc;
    say "metrics dump written to %s" path

(* ------------------------------------------------------------------ *)
(* serve: the query/alert daemon over the MOASSERV wire protocol *)

let read_store = function
  | Some path when Sys.file_exists path -> Collect.Store.read_file path
  | Some path -> failwith (Printf.sprintf "no episode store at %s" path)
  | None -> failwith "--store FILE is required"

let parse_query_or_die s =
  match Collect.Query.parse s with
  | Ok q -> q
  | Error msg -> failwith ("bad query: " ^ msg)

let serve_annotator () =
  Stream.Source.trusted_annotator
    ~distrusted:
      (Net.Asn.Set.of_list
         [
           Measurement.Synthetic_routeviews.fault_as_1998;
           Measurement.Synthetic_routeviews.fault_as_2001;
         ])
    ()

(* One scripted serve session: commands in, rendered responses out.  The
   transcript is deterministic — CI replays the same script twice and
   diffs the bytes. *)
let serve_command server client source ~checkpoint_every ~write_checkpoint line
    =
  let cmd, rest =
    match String.index_opt line ' ' with
    | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    | None -> (line, "")
  in
  let call req = say "%s" (Serve.Proto.render_response (Serve.Client.call client req)) in
  match cmd with
  | "ping" -> call Serve.Proto.Ping
  | "stats" -> call Serve.Proto.Stats
  | "query" -> call (Serve.Proto.Query (parse_query_or_die rest))
  | "count" -> call (Serve.Proto.Count (parse_query_or_die rest))
  | "subscribe" -> call (Serve.Proto.Subscribe (parse_query_or_die rest))
  | "unsubscribe" ->
    (match int_of_string_opt rest with
    | Some id -> call (Serve.Proto.Unsubscribe id)
    | None -> failwith ("unsubscribe needs an integer id, got: " ^ rest))
  | "tail" ->
    let max_batches =
      if rest = "" then None
      else
        match int_of_string_opt rest with
        | Some n when n > 0 -> Some n
        | _ -> failwith ("tail needs a positive batch count, got: " ^ rest)
    in
    let batches = ref 0 in
    let on_batch _server =
      incr batches;
      match checkpoint_every with
      | Some n when !batches mod n = 0 -> write_checkpoint ()
      | _ -> ()
    in
    say "tailed %d batches" (Serve.Server.tail ?max_batches ~on_batch server source);
    (match Serve.Server.health server with
    | Serve.Server.Serving -> ()
    | Serve.Server.Degraded reason -> say "tail degraded: %s" reason)
  | "poll" ->
    (match Serve.Client.poll client with
    | [] -> say "(no alerts)"
    | alerts ->
      List.iter (fun r -> say "%s" (Serve.Proto.render_response r)) alerts)
  | "crash" ->
    (* simulate a SIGKILL mid-session: no cleanup, no checkpoint-at-exit —
       recovery must come from the last periodic checkpoint *)
    say "crashing (exit 137, no cleanup)";
    Unix._exit 137
  | _ -> failwith ("unknown serve command: " ^ cmd)

let run_serve store_path script smoke jobs seed checkpoint checkpoint_every
    resume metrics_out =
  let store = read_store store_path in
  if checkpoint_every <> None && checkpoint = None then
    failwith "--checkpoint-every needs --checkpoint FILE";
  let params =
    let base =
      if smoke then smoke_monitor_params
      else Measurement.Synthetic_routeviews.default_params
    in
    match seed with
    | None -> base
    | Some seed -> { base with Measurement.Synthetic_routeviews.seed }
  in
  let metrics =
    if metrics_out = None then Obs.Registry.noop else Obs.Registry.create ()
  in
  let live_snapshot =
    match resume with
    | None -> None
    | Some path ->
      let snap = Stream.Checkpoint.read_file path in
      say "resumed live tail from %s (stream clock %d)" path
        snap.Stream.Monitor.s_last_time;
      Some snap
  in
  let server =
    Serve.Server.create ~metrics ?live_jobs:jobs ?live_snapshot ~store ()
  in
  let write_checkpoint () =
    match checkpoint with
    | Some path ->
      Stream.Checkpoint.write_file path (Serve.Server.live_snapshot server)
    | None -> ()
  in
  let source = Stream.Source.of_archive ~annotate:(serve_annotator ()) params in
  let client = Serve.Client.connect server in
  let lines =
    match script with
    | Some path ->
      let ic = open_in path in
      let rec read acc =
        match input_line ic with
        | line -> read (line :: acc)
        | exception End_of_file -> close_in ic; List.rev acc
      in
      read []
    | None ->
      let rec read acc =
        match input_line stdin with
        | line -> read (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      read []
  in
  say "serving %d episodes over %d vantages"
    (Collect.Store.count store)
    (List.length (Collect.Store.vantages store));
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if line <> "" && line.[0] <> '#' then begin
        say "> %s" line;
        serve_command server client source ~checkpoint_every ~write_checkpoint
          line
      end)
    lines;
  Serve.Client.close client;
  Stream.Source.close source;
  write_checkpoint ();
  match metrics_out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc
      (Obs.Registry.to_json_lines ~extra:[ ("workload", "serve") ] metrics);
    close_out oc;
    say "metrics dump written to %s" path

let run_query_client store_path query_str count_only attempts timeout seed =
  let store = read_store store_path in
  let q = parse_query_or_die query_str in
  (* the full wire path: encode the request, decode the response — with
     the same retrying client a remote deployment would use (per-call
     timeout, capped seed-deterministic backoff) *)
  let server = Serve.Server.create ~store () in
  let client =
    Serve.Client.connect
      ~retry:{ Serve.Client.default_retry with attempts }
      ?timeout
      ~rng:(Mutil.Rng.create ~seed)
      server
  in
  let req = if count_only then Serve.Proto.Count q else Serve.Proto.Query q in
  (match Serve.Client.call client req with
  | resp -> say "%s" (Serve.Proto.render_response resp)
  | exception Serve.Client.Failed (Serve.Client.Timed_out s) ->
    say "failed: timed out after %.3fs" s
  | exception Serve.Client.Failed (Serve.Client.Unreachable msg) ->
    say "failed: unreachable (%s)" msg);
  if Serve.Client.retries client > 0 then
    say "(%d retries)" (Serve.Client.retries client);
  Serve.Client.close client

(* ------------------------------------------------------------------ *)
(* chaos: seeded fault-plan sweep over the serving path.  The invariant:
   under any plan, every request either answers correctly, is refused
   in-band with Rejected, or fails cleanly at the client — never a hang,
   a crash, or a wrong answer.  The whole transcript is a pure function
   of the seed (virtual clock, no wall time), so CI diffs two runs. *)

let build_chaos_inputs ~smoke =
  let annotate = serve_annotator () in
  let params =
    if smoke then smoke_monitor_params
    else Measurement.Synthetic_routeviews.default_params
  in
  let batches = Stream.Source.archive_batches ~annotate params in
  let streams =
    Collect.Vantage.replay ~coverage:0.65 ~vantages:3 ~seed:0xC011EC7L batches
  in
  let store =
    Collect.Store.of_correlation
      (Collect.Correlator.of_result
         (Collect.Mesh.run Stream.Monitor.default_config streams))
  in
  (store, batches)

(* deterministic request mix cycling over the stored episodes *)
let chaos_request entries n i =
  let e = entries.(i mod n) in
  let open Collect.Query in
  match i mod 5 with
  | 0 -> Serve.Proto.Query (empty |> prefix e.Collect.Correlator.x_prefix)
  | 1 ->
    Serve.Proto.Query (empty |> prefix e.Collect.Correlator.x_prefix |> covered)
  | 2 ->
    Serve.Proto.Count
      (match Net.Asn.Set.min_elt_opt e.Collect.Correlator.x_origins with
      | Some a -> empty |> origin a
      | None -> empty)
  | 3 -> Serve.Proto.Query (empty |> min_visibility (1 + (i mod 3)))
  | _ -> if i mod 10 = 4 then Serve.Proto.Ping else Serve.Proto.Count empty

let run_chaos smoke requests plan_name chaos_seed metrics_out =
  let store, batches = build_chaos_inputs ~smoke in
  let entries = Array.of_list (Collect.Store.entries store) in
  let n_entries = Array.length entries in
  if n_entries = 0 then failwith "chaos: empty store";
  say "chaos sweep: %d episodes, %d requests per plan, seed %Ld" n_entries
    requests chaos_seed;
  let root = Mutil.Rng.create ~seed:chaos_seed in
  let pristine = Serve.Server.create ~store () in
  let oracle = Serve.Client.connect pristine in
  let expected req =
    Serve.Proto.render_response (Serve.Client.call oracle req)
  in
  let plans =
    match plan_name with
    | None -> Chaos.presets
    | Some name -> (
      match List.assoc_opt name Chaos.presets with
      | Some p -> [ (name, p) ]
      | None ->
        failwith
          (Printf.sprintf "unknown plan %s (have: %s)" name
             (String.concat ", " (List.map fst Chaos.presets))))
  in
  let registries = ref [] in
  let violations = ref 0 in
  let run_plan pi (name, plan) =
    say "-- plan %s: %s" name (Chaos.plan_to_string plan);
    let arm = Mutil.Rng.split_at root pi in
    let clock = Chaos.Clock.create () in
    let metrics =
      if metrics_out = None then Obs.Registry.noop else Obs.Registry.create ()
    in
    if not (Obs.Registry.is_noop metrics) then
      registries := metrics :: !registries;
    (* tight limits so the shedding / deadline / eviction paths actually
       fire under the injected delays *)
    let limits =
      {
        Serve.Server.default_limits with
        deadline = 0.25;
        queue_high_water = 4;
        evict_after = 8;
      }
    in
    let server =
      Serve.Server.create ~metrics ~limits ~now:(Chaos.Clock.fn clock) ~store
        ()
    in
    let transport =
      Chaos.transport ~clock ~rng:(Mutil.Rng.split_at arm 0) ~plan server
    in
    let client =
      Serve.Client.connect_via
        ~retry:{ Serve.Client.default_retry with attempts = 4 }
        ~timeout:0.3
        ~rng:(Mutil.Rng.split_at arm 1)
        ~clock:(Chaos.Clock.fn clock)
        ~sleep:(Chaos.Clock.sleep clock)
        transport
    in
    let ok = ref 0 and rejected = ref 0 and failed = ref 0 in
    for i = 0 to requests - 1 do
      let req = chaos_request entries n_entries i in
      let want = expected req in
      match Serve.Client.call client req with
      | resp -> (
        let got = Serve.Proto.render_response resp in
        if got = want then incr ok
        else
          match resp with
          | Serve.Proto.Rejected _ -> incr rejected
          | _ ->
            incr violations;
            say "   WRONG ANSWER on request %d: got %s" i got)
      | exception Serve.Client.Failed _ -> incr failed
    done;
    (* slow-consumer arm: subscribe over a direct (unfaulted) session,
       then tail without polling so the tiny outbox overflows, sheds
       oldest-first and finally evicts the session *)
    let sub = Serve.Client.connect server in
    (match
       Serve.Client.call sub (Serve.Proto.Subscribe Collect.Query.empty)
     with
    | Serve.Proto.Subscribed _ -> ()
    | other -> say "   subscribe: %s" (Serve.Proto.render_response other));
    let tail_src = Stream.Source.of_batches batches in
    let tailed =
      Serve.Server.tail ~max_batches:(if smoke then 12 else 30) server tail_src
    in
    Stream.Source.close tail_src;
    let polled = List.length (Serve.Client.poll sub) in
    say "   requests: ok=%d rejected=%d failed=%d retries=%d" !ok !rejected
      !failed (Serve.Client.retries client);
    say "   tail: %d batches, polled %d alerts" tailed polled;
    say "   server: shed=%d timeouts=%d evicted=%d"
      (Serve.Server.shed_total server)
      (Serve.Server.timeout_total server)
      (Serve.Server.evicted_total server);
    Serve.Client.close sub;
    Serve.Client.close client
  in
  List.iteri run_plan plans;
  (* degraded arm: the tail source dies mid-stream; the server keeps
     answering queries read-only and later tails are no-ops *)
  say "-- degraded arm: source failure after 3 batches";
  let server = Serve.Server.create ~store () in
  let failing = Chaos.failing_source ~after:3 (Array.to_list batches) in
  let n = Serve.Server.tail server failing in
  say "   ingested %d batches before the source died" n;
  (match Serve.Server.health server with
  | Serve.Server.Degraded reason -> say "   health: degraded (%s)" reason
  | Serve.Server.Serving ->
    incr violations;
    say "   VIOLATION: server still Serving after source failure");
  let again = Serve.Server.tail server (Stream.Source.of_batches batches) in
  say "   post-failure tail: %d batches" again;
  let direct = Serve.Client.connect server in
  let req = chaos_request entries n_entries 0 in
  let got = Serve.Proto.render_response (Serve.Client.call direct req) in
  (if got = expected req then say "   degraded queries: ok"
   else begin
     incr violations;
     say "   VIOLATION: degraded query diverged"
   end);
  say "%s"
    (Serve.Proto.render_response (Serve.Client.call direct Serve.Proto.Stats));
  Serve.Client.close direct;
  Serve.Client.close oracle;
  (match metrics_out with
  | None -> ()
  | Some path ->
    let merged = Obs.Registry.create () in
    List.iter
      (fun r -> Obs.Registry.merge ~into:merged r)
      (List.rev !registries);
    let oc = open_out path in
    output_string oc
      (Obs.Registry.to_json_lines ~extra:[ ("workload", "chaos") ] merged);
    close_out oc;
    say "metrics dump written to %s" path);
  if !violations > 0 then
    failwith (Printf.sprintf "chaos: %d invariant violations" !violations);
  say "chaos invariants held: every request answered, rejected, or failed \
       cleanly"

let run_topologies () =
  List.iter
    (fun t -> say "%s" (Topology.Paper_topologies.describe t))
    (Topology.Paper_topologies.all ())

let run_all seed jobs out_dir =
  say "== Topologies (Section 5.1) ==";
  run_topologies ();
  say "";
  say "== Figure 4 ==";
  run_fig4 ();
  say "== Figure 5 and Section 3 statistics ==";
  run_fig5 ();
  say "";
  say "== Experiment 1 (Figure 9) ==";
  run_exp1 seed jobs out_dir;
  say "== Experiment 2 (Figure 10) ==";
  run_exp2 seed jobs out_dir;
  say "== Experiment 3 (Figure 11) ==";
  run_exp3 seed jobs out_dir;
  say "== Headline statistics ==";
  run_summary seed jobs;
  say "";
  say "== Ablations (Sections 4.3-4.4) ==";
  run_ablations jobs;
  say "";
  say "== Related-work comparison (Sections 2 and 6) ==";
  run_compare ();
  say "";
  run_studies ()

open Cmdliner

let seed_arg =
  let doc = "Root seed for the experiment sweeps (decimal integer)." in
  Arg.(value & opt (some int64) None & info [ "seed" ] ~docv:"SEED" ~doc)

let out_dir_arg =
  let doc = "Directory to write per-figure CSV files into." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)

(* rejects 0 and negatives at parse time, so e.g. --jobs 0 or --window 0
   is a usage error instead of being silently ignored or crashing later;
   every positive-count option goes through this one converter *)
let pos_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n > 0 -> Ok n
    | Some n -> Error (`Msg (Printf.sprintf "%d is not a positive integer" n))
    | None -> Error (`Msg (Printf.sprintf "%S is not an integer" s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let jobs_arg =
  let doc =
    "Worker domains for the experiment sweeps (default: $(b,MOAS_JOBS) if \
     set, else the recommended domain count).  Output is byte-identical at \
     any job count."
  in
  Arg.(value & opt (some pos_int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let cmd name ~doc term = Cmd.v (Cmd.info name ~doc) term

let fig4_cmd = cmd "fig4" ~doc:"Figure 4: daily MOAS conflicts, 11/1997-7/2001."
    Term.(const run_fig4 $ const ())

let fig5_cmd = cmd "fig5" ~doc:"Figure 5: MOAS duration histogram and Section 3 statistics."
    Term.(const run_fig5 $ const ())

let exp1_cmd = cmd "exp1" ~doc:"Experiment 1 (Figure 9): MOAS list effectiveness, 46-AS."
    Term.(const run_exp1 $ seed_arg $ jobs_arg $ out_dir_arg)

let exp2_cmd = cmd "exp2" ~doc:"Experiment 2 (Figure 10): topology-size comparison."
    Term.(const run_exp2 $ seed_arg $ jobs_arg $ out_dir_arg)

let exp3_cmd = cmd "exp3" ~doc:"Experiment 3 (Figure 11): partial deployment."
    Term.(const run_exp3 $ seed_arg $ jobs_arg $ out_dir_arg)

let summary_cmd = cmd "summary" ~doc:"Headline paper-vs-measured statistics."
    Term.(const run_summary $ seed_arg $ jobs_arg)

let ablations_cmd = cmd "ablations" ~doc:"Section 4.3/4.4 ablations."
    Term.(const run_ablations $ jobs_arg)

let compare_cmd = cmd "compare" ~doc:"Head-to-head against S-BGP and IRR filtering baselines."
    Term.(const run_compare $ const ())

let studies_cmd = cmd "studies" ~doc:"Vantage-point and convergence-dynamics studies."
    Term.(const run_studies $ const ())

let simulate_cmd =
  let size =
    Arg.(value & opt int 46 & info [ "topology" ] ~docv:"N" ~doc:"Topology size (25, 46, 63 or a custom node count).")
  in
  let n_origins =
    Arg.(value & opt int 1 & info [ "origins" ] ~docv:"N" ~doc:"Legitimate origin ASes (drawn from stubs).")
  in
  let n_attackers =
    Arg.(value & opt int 2 & info [ "attackers" ] ~docv:"N" ~doc:"Attacker ASes (drawn from all ASes).")
  in
  let deployment =
    Arg.(value & opt string "full" & info [ "deployment" ] ~docv:"D" ~doc:"none, half, full, or a fraction in [0,1].")
  in
  let policy =
    Arg.(value & opt string "shortest" & info [ "policy" ] ~docv:"P" ~doc:"shortest or gao-rexford.")
  in
  let sim_seed =
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"Scenario seed.")
  in
  let runs =
    Arg.(value & opt int 5 & info [ "runs" ] ~docv:"N" ~doc:"Independent runs to execute.")
  in
  cmd "simulate" ~doc:"Run custom attack scenarios and print per-run outcomes."
    Term.(const run_simulate $ size $ n_origins $ n_attackers $ deployment $ policy $ sim_seed $ runs)

let robustness_cmd =
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Small deterministic sweep (25-AS only) for CI.")
  in
  cmd "robustness"
    ~doc:"Detection robustness under injected faults: partition, churn and \
          message-loss sweeps."
    Term.(const run_robustness $ seed_arg $ smoke $ jobs_arg)

let monitor_cmd =
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Replay a 1/10-size archive with the same phenomenology, for CI.")
  in
  let window =
    Arg.(value & opt pos_int 86_400
         & info [ "window" ] ~docv:"SECONDS"
             ~doc:"Alert aggregation window in seconds (a positive integer; \
                   default one day).")
  in
  let annotate =
    Arg.(value & opt string "trusted"
         & info [ "annotate" ] ~docv:"POLICY"
             ~doc:"MOAS-list annotation policy: $(b,trusted) (cooperating \
                   origins attach lists, fault ASes do not) or $(b,none).")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Write a binary checkpoint of the monitor state to FILE \
                   (at exit, and periodically with $(b,--checkpoint-every)).")
  in
  let checkpoint_every =
    Arg.(value & opt (some pos_int) None
         & info [ "checkpoint-every" ] ~docv:"DAYS"
             ~doc:"Also checkpoint every DAYS observed days (a positive \
                   integer; needs $(b,--checkpoint)).")
  in
  let stop_after =
    Arg.(value & opt (some pos_int) None
         & info [ "stop-after" ] ~docv:"DAYS"
             ~doc:"Stop the replay after DAYS observed days (a positive \
                   integer, counting any days already covered by a resumed \
                   checkpoint).")
  in
  let resume =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"FILE"
             ~doc:"Restore monitor state from a checkpoint FILE and skip \
                   archive batches it already covers.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Write the merged lib/obs metrics dump (JSON lines) to FILE.")
  in
  cmd "monitor"
    ~doc:"Online MOAS monitor: replay the synthetic RouteViews archive as a \
          stream with sharded ingest, episode tracking and checkpoint/restore. \
          The report is byte-identical at any $(b,--jobs) count and across \
          checkpoint/restore."
    Term.(const run_monitor $ smoke $ jobs_arg $ window $ annotate $ seed_arg
          $ checkpoint $ checkpoint_every $ stop_after $ resume $ metrics_out)

let collect_cmd =
  let vantages =
    Arg.(value & opt pos_int 3
         & info [ "vantages" ] ~docv:"N"
             ~doc:"Collector vantage points to attach (positive integer).")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Run on the 25-AS topology instead of the 46-AS one, for CI.")
  in
  let store =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"FILE"
             ~doc:"Write the correlated episode store (binary, queryable \
                   with $(b,--query)) to FILE.")
  in
  let query =
    Arg.(value & opt (some string) None
         & info [ "query" ] ~docv:"QUERY"
             ~doc:"Skip the simulation and query an existing $(b,--store) \
                   FILE instead: comma-separated key=value clauses among \
                   $(b,prefix=P), $(b,covered=BOOL), $(b,origin=AS), \
                   $(b,since=T), $(b,until=T), $(b,min_visibility=K), \
                   $(b,bucket=short|medium|long).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Write the merged lib/obs metrics dump (JSON lines) to FILE.")
  in
  let order =
    Arg.(value & opt (enum [ ("normal", "normal"); ("reversed", "reversed") ])
           "normal"
         & info [ "order" ] ~docv:"ORDER"
             ~doc:"Vantage list order fed to the mesh ($(b,normal) or \
                   $(b,reversed)); the merged report is byte-identical \
                   either way, which CI asserts.")
  in
  cmd "collect"
    ~doc:"Multi-vantage collector mesh: per-vantage RouteViews-style feeds \
          over a simulated attack, concurrent per-vantage monitors, \
          cross-vantage MOAS correlation with per-episode visibility k/N, \
          and a partition arm where lib/faults isolates one vantage. \
          Reports are byte-identical at any $(b,--jobs) count and vantage \
          order."
    Term.(const run_collect $ vantages $ jobs_arg $ smoke $ seed_arg $ store
          $ query $ metrics_out $ order)

let classify_cmd =
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Build the corpus from the 25-AS topology only instead of \
                 all three paper topologies, for CI.")
  in
  let features =
    Arg.(value & opt (some string) None
         & info [ "features" ] ~docv:"FILE"
             ~doc:"Write the labelled feature matrix (CSV) to FILE.")
  in
  let report =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"Also write the evaluation report to FILE (it always \
                   prints to stdout).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Write the merged lib/obs metrics dump (JSON lines) to FILE.")
  in
  cmd "classify"
    ~doc:"Learned episode classifier: capture the attack / partition / \
          fault-churn scenario corpus, label it with the ROA ground-truth \
          oracle, train logistic-regression and boosted-stump models, and \
          evaluate them against the MOAS-list and always-flag baselines \
          with per-arm precision/recall/F1.  The report is byte-identical \
          at any $(b,--jobs) count, which CI asserts."
    Term.(const run_classify $ smoke $ jobs_arg $ seed_arg $ features
          $ report $ metrics_out)

let community_cmd =
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Run the 25-AS topology with 2 replicates only instead of \
                 all three paper topologies with 3, for CI.")
  in
  let report =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"Also write the comparison report to FILE (it always \
                   prints to stdout).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Write the merged lib/obs metrics dump (JSON lines) to FILE.")
  in
  cmd "community"
    ~doc:"Community-telemetry detection head-to-head: run every scenario \
          arm (including the Section 4.3 scrubbing arm) under the per-AS \
          community usage model and score the community-dynamics backend \
          against the MOAS-list check, the footnote-3 detector and the \
          IRR / S-BGP baselines with per-arm precision/recall/F1.  The \
          report is byte-identical at any $(b,--jobs) count, which CI \
          asserts."
    Term.(const run_community $ smoke $ jobs_arg $ seed_arg $ report
          $ metrics_out)

let store_arg =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"FILE"
           ~doc:"Episode store to serve (written by $(b,collect --store)).")

let serve_cmd =
  let script =
    Arg.(value & opt (some string) None
         & info [ "script" ] ~docv:"FILE"
             ~doc:"Read session commands from FILE instead of stdin: one \
                   command per line among $(b,ping), $(b,stats), \
                   $(b,query Q), $(b,count Q), $(b,subscribe Q), \
                   $(b,unsubscribe ID), $(b,tail [N]), $(b,poll); blank \
                   lines and $(b,#) comments are skipped.")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Tail the 1/10-size archive instead of the full one, for CI.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Write the lib/obs metrics dump (JSON lines) to FILE.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Write a binary checkpoint of the live-tail monitor state \
                   to FILE (at exit, and periodically with \
                   $(b,--checkpoint-every)).")
  in
  let checkpoint_every =
    Arg.(value & opt (some pos_int) None
         & info [ "checkpoint-every" ] ~docv:"BATCHES"
             ~doc:"Also checkpoint every BATCHES tailed batches (a positive \
                   integer; needs $(b,--checkpoint)).")
  in
  let resume =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"FILE"
             ~doc:"Restore the live-tail monitor from a checkpoint FILE; \
                   $(b,tail) skips archive batches the checkpoint already \
                   covers, and no alert predating it is re-raised — a killed \
                   server resumed this way converges with the uninterrupted \
                   run.")
  in
  cmd "serve"
    ~doc:"Serve an episode store over the versioned MOASSERV wire protocol: \
          typed queries, live-tail alert subscriptions, stats, \
          checkpoint/resume crash recovery.  The scripted session transcript \
          is byte-identical across runs, which CI asserts."
    Term.(const run_serve $ store_arg $ script $ smoke $ jobs_arg $ seed_arg
          $ checkpoint $ checkpoint_every $ resume $ metrics_out)

let query_client_cmd =
  let query =
    Arg.(value & opt string ""
         & info [ "query" ] ~docv:"QUERY"
             ~doc:"Typed query, comma-separated key=value clauses among \
                   $(b,prefix=P), $(b,covered=BOOL), $(b,origin=AS), \
                   $(b,since=T), $(b,until=T), $(b,min_visibility=K), \
                   $(b,bucket=short|medium|long); empty matches everything.")
  in
  let count_only =
    Arg.(value & flag & info [ "count" ]
           ~doc:"Ask for the match count instead of the entries.")
  in
  let attempts =
    Arg.(value & opt pos_int 3
         & info [ "attempts" ] ~docv:"N"
             ~doc:"Total call attempts including the first (retries use \
                   capped exponential backoff with seeded jitter).")
  in
  let timeout =
    Arg.(value & opt (some float) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-attempt reply budget; a slower reply counts as a \
                   failed attempt.")
  in
  let retry_seed =
    Arg.(value & opt int64 0x52E7A11L
         & info [ "retry-seed" ] ~docv:"SEED"
             ~doc:"Seed for the backoff jitter stream.")
  in
  cmd "query-client"
    ~doc:"One query against an episode store through the full MOASSERV wire \
          path (request and response both cross the codec), with \
          idempotence-aware seeded retry."
    Term.(const run_query_client $ store_arg $ query $ count_only $ attempts
          $ timeout $ retry_seed)

let chaos_cmd =
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"Sweep over the 1/10-size archive store, for CI.")
  in
  let requests =
    Arg.(value & opt pos_int 400
         & info [ "requests" ] ~docv:"N"
             ~doc:"Requests per fault plan (positive integer).")
  in
  let plan =
    Arg.(value & opt (some string) None
         & info [ "plan" ] ~docv:"NAME"
             ~doc:"Sweep only this plan ($(b,calm), $(b,lossy), \
                   $(b,corrupting) or $(b,hostile)); default all four.")
  in
  let chaos_seed =
    Arg.(value & opt int64 0xC4A05L
         & info [ "chaos-seed" ] ~docv:"SEED"
             ~doc:"Root seed for fault draws and retry jitter; the whole \
                   transcript is a pure function of it.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Write the merged lib/obs metrics dump (JSON lines) to \
                   FILE.")
  in
  cmd "chaos"
    ~doc:"Seeded chaos sweep over the serving path: fault plans inject frame \
          drops, corruption, truncation, delays and disconnects between \
          client and server (plus a source-failure degraded arm), asserting \
          that every request answers correctly, is refused with Rejected, or \
          fails cleanly — never a hang, crash or wrong answer.  Exits \
          non-zero on any violation; the transcript is byte-identical for a \
          given seed, which CI asserts."
    Term.(const run_chaos $ smoke $ requests $ plan $ chaos_seed $ metrics_out)

let topologies_cmd = cmd "topologies" ~doc:"Describe the derived 25/46/63-AS topologies."
    Term.(const run_topologies $ const ())

let all_cmd = cmd "all" ~doc:"Everything: figures 4-5, experiments 1-3, summary, ablations."
    Term.(const run_all $ seed_arg $ jobs_arg $ out_dir_arg)

let main_cmd =
  let doc =
    "reproduction of 'Detection of Invalid Routing Announcement in the \
     Internet' (DSN 2002)"
  in
  Cmd.group (Cmd.info "moas_sim" ~version:"1.0.0" ~doc)
    [
      fig4_cmd;
      fig5_cmd;
      exp1_cmd;
      exp2_cmd;
      exp3_cmd;
      summary_cmd;
      ablations_cmd;
      compare_cmd;
      studies_cmd;
      robustness_cmd;
      monitor_cmd;
      collect_cmd;
      classify_cmd;
      community_cmd;
      serve_cmd;
      query_client_cmd;
      chaos_cmd;
      simulate_cmd;
      topologies_cmd;
      all_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
