(* Benchmark harness: regenerates every table and figure of the paper
   (Figures 4, 5, 9, 10, 11 and the headline text statistics), runs a set
   of instrumented convergence workloads through the lib/obs metrics
   registry, dumps everything as JSON lines (BENCH_1.json), then runs one
   Bechamel micro-benchmark per experiment workload plus a few for the
   core primitives, and finishes with the large-topology scaling suite
   (generated 200/500/1000-AS internets at several Exec.Pool job counts,
   dumped to BENCH_3.json).

   Run with: dune exec bench/main.exe
   Smoke mode (figures + metrics dump, no Bechamel, no scaling):
     dune exec bench/main.exe -- --smoke
   or: dune build @bench-smoke
   Scaling suite alone: dune exec bench/main.exe -- --scaling-only *)

open Bechamel
open Toolkit
open Net

let say fmt = Printf.printf (fmt ^^ "\n%!")

let banner title =
  say "";
  say "==================================================================";
  say "== %s" title;
  say "=================================================================="

(* Grid points that oversubscribe the machine — more worker domains (or
   clients) than cores — are stamped [saturated=true] so BENCH
   trajectories stay comparable across machines: a flat or negative
   speedup at a saturated point is expected oversubscription, not a
   scaling regression.  On a single-core runner every jobs>1 point is
   saturated and only the jobs=1 numbers are meaningful. *)
let saturated jobs =
  ("saturated", string_of_bool (jobs > Domain.recommended_domain_count ()))

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate the paper's tables and figures.                  *)

let regenerate_figures ?(tracer = Obs.Span.noop) ?jobs () =
  banner "Topologies (Section 5.1)";
  List.iter
    (fun t -> say "%s" (Topology.Paper_topologies.describe t))
    (Topology.Paper_topologies.all ());
  banner "Figure 4: daily MOAS conflicts";
  let summary =
    Obs.Span.with_span tracer "measurement pipeline (Figures 4+5)" @@ fun () ->
    Measurement.Report.run Measurement.Synthetic_routeviews.default_params
  in
  print_string (Measurement.Report.figure4_text summary);
  banner "Figure 5: MOAS durations + Section 3 statistics";
  print_string (Measurement.Report.figure5_text summary);
  print_string (Measurement.Report.summary_table summary);
  banner "Experiment 1 (Figure 9): MOAS list effectiveness, 46-AS";
  List.iter
    (fun f -> print_string (Experiments.Figures.render f))
    (Experiments.Figures.figure9 ?jobs ~tracer ());
  banner "Experiment 2 (Figure 10): topology sizes";
  List.iter
    (fun f -> print_string (Experiments.Figures.render f))
    (Experiments.Figures.figure10 ?jobs ~tracer ());
  banner "Experiment 3 (Figure 11): partial deployment";
  List.iter
    (fun f -> print_string (Experiments.Figures.render f))
    (Experiments.Figures.figure11 ?jobs ~tracer ());
  banner "Headline statistics (paper vs measured)";
  print_string (Experiments.Figures.summary_table ?jobs ~tracer ());
  banner "Ablations (Sections 4.3-4.4)";
  print_string
    (Obs.Span.with_span tracer "ablations" (fun () ->
         Experiments.Ablation.render_all ?jobs ()));
  banner "Fault-event detection on the Figure 4 series";
  print_string
    (Measurement.Anomaly.render (Measurement.Anomaly.spikes_of_summary summary));
  say "  (expected: 1998-04-07 and the two-day 2001-04-06 event, nothing else)";
  banner "Off-line monitor vantage study (Section 4.2)";
  print_string
    (Experiments.Vantage_study.render
       ( Obs.Span.with_span tracer "vantage study" @@ fun () ->
         Experiments.Vantage_study.study
           ~topology:(Topology.Paper_topologies.topology_46 ())
           () ));
  banner "Detection and convergence dynamics (full deployment, 46-AS)";
  print_string
    (Experiments.Convergence.render
       ( Obs.Span.with_span tracer "convergence study" @@ fun () ->
         Experiments.Convergence.study
           ~topology:(Topology.Paper_topologies.topology_46 ())
           () ));
  banner "DNS-based verification and its circular dependency (Section 2)";
  print_string
    (Experiments.Dns_study.render
       ( Obs.Span.with_span tracer "DNS study" @@ fun () ->
         Experiments.Dns_study.study
           ~topology:(Topology.Paper_topologies.topology_46 ())
           () ));
  banner "Related-work comparison (Sections 2 and 6)";
  print_string
    (Baselines.Comparison.render
       ( Obs.Span.with_span tracer "baseline comparison" @@ fun () ->
         Baselines.Comparison.head_to_head
           ~topology:(Topology.Paper_topologies.topology_46 ())
           () ));
  say
    "  S-BGP is perfect while keys hold but fails closed (routeless ASes) and";
  say
    "  collapses on one compromised key; the MOAS list degrades gracefully and";
  say "  needs no key infrastructure - the paper's Section 6 argument."

(* ------------------------------------------------------------------ *)
(* Part 2: instrumented convergence workloads.  One live registry per
   topology; the engine, every router and every detector feed it, and the
   per-workload dumps (stamped with a "workload" label) make up the bulk
   of BENCH_1.json. *)

let workloads =
  [
    ("25-AS", Topology.Paper_topologies.topology_25, 3);
    ("46-AS", Topology.Paper_topologies.topology_46, 5);
    ("63-AS", Topology.Paper_topologies.topology_63, 8);
  ]

let run_instrumented_workloads () =
  banner "Instrumented workloads (lib/obs registry, Full MOAS deployment)";
  List.map
    (fun (name, topology, n_attackers) ->
      let t = topology () in
      let metrics = Obs.Registry.create () in
      let rng = Mutil.Rng.of_int 97 in
      let scenario =
        Attack.Scenario.random rng ~graph:t.Topology.Paper_topologies.graph
          ~stub:t.Topology.Paper_topologies.stub ~n_origins:1 ~n_attackers
          ~deployment:Moas.Deployment.Full
      in
      ignore (Attack.Scenario.run ~metrics (Mutil.Rng.of_int 3) scenario);
      say "";
      say "-- workload %s: 1 origin, %d attackers --" name n_attackers;
      say "   events executed: %d, updates sent: %d, received: %d, alarms: %d"
        (Obs.Registry.counter_value metrics "sim_events_executed")
        (Obs.Registry.counter_value metrics "bgp_updates_sent_total")
        (Obs.Registry.counter_value metrics "bgp_updates_received_total")
        (Obs.Registry.counter_value metrics "moas_alarms_total");
      (name, metrics))
    workloads

(* ------------------------------------------------------------------ *)
(* Part 3: the JSON-lines dump consumed by the perf trajectory. *)

let write_dump ~out ~tracer named_registries =
  let oc = open_out out in
  List.iter
    (fun (workload, metrics) ->
      output_string oc
        (Obs.Registry.to_json_lines ~extra:[ ("workload", workload) ] metrics))
    named_registries;
  output_string oc
    (Obs.Span.to_json_lines ~extra:[ ("workload", "figures") ] tracer);
  close_out oc;
  say "";
  say "metrics dump written to %s" out

(* ------------------------------------------------------------------ *)
(* Part 4: Bechamel micro-benchmarks, one per table/figure workload.    *)

let victim = Prefix.of_string "192.0.2.0/24"

let scenario_runner ~topology ~deployment ~n_attackers =
  let t = topology () in
  let rng = Mutil.Rng.of_int 97 in
  let scenario =
    Attack.Scenario.random rng ~graph:t.Topology.Paper_topologies.graph
      ~stub:t.Topology.Paper_topologies.stub ~n_origins:1 ~n_attackers
      ~deployment
  in
  fun () -> ignore (Attack.Scenario.run (Mutil.Rng.of_int 3) scenario)

let bench_measurement_pipeline () =
  (* a scaled-down archive: same code path as Figures 4-5 at ~1/10 size *)
  let params =
    {
      Measurement.Synthetic_routeviews.default_params with
      Measurement.Synthetic_routeviews.universe_size = 400;
      initial_long_lived = 65;
      final_long_lived = 139;
      one_day_churn = 24;
      medium_churn = 9;
      event_1998_size = 114;
      event_2001_size = 97;
    }
  in
  fun () -> ignore (Measurement.Report.run params)

let bench_trie () =
  let prefixes =
    List.init 512 (fun i ->
        Prefix.make (Ipv4.of_octets (i mod 223) (i / 7 mod 255) 0 0) 16)
  in
  let trie =
    Prefix_trie.of_list (List.map (fun p -> (p, Prefix.length p)) prefixes)
  in
  let addr = Ipv4.of_octets 100 20 3 4 in
  fun () -> ignore (Prefix_trie.longest_match addr trie)

let bench_decision () =
  let route i =
    {
      Bgp.Route.prefix = victim;
      as_path = Bgp.As_path.of_list (List.init ((i mod 5) + 1) (fun k -> 100 + k));
      origin = Bgp.Route.Igp;
      learned_from = Asn.make (200 + i);
      local_pref = 100;
      communities = Bgp.Community.Set.empty;
    }
  in
  let candidates = List.init 12 route in
  fun () -> ignore (Bgp.Decision.best ~self:(Asn.make 1) candidates)

let bench_moas_check () =
  let oracle = Moas.Origin_verification.create () in
  Moas.Origin_verification.register oracle victim (Asn.Set.of_list [ 10; 20 ]);
  let detector =
    Moas.Detector.create ~backend:(Moas.Detector.Oracle oracle)
      ~self:(Asn.make 1) ()
  in
  let validator = Moas.Detector.validator detector in
  let legit = Moas.Moas_list.encode (Asn.Set.of_list [ 10; 20 ]) in
  let forged = Moas.Moas_list.encode (Asn.Set.of_list [ 10; 20; 666 ]) in
  let mk ~from ~path ~communities =
    {
      Bgp.Route.prefix = victim;
      as_path = Bgp.As_path.of_list path;
      origin = Bgp.Route.Igp;
      learned_from = Asn.make from;
      local_pref = 100;
      communities;
    }
  in
  let candidates =
    [
      mk ~from:2 ~path:[ 2; 10 ] ~communities:legit;
      mk ~from:3 ~path:[ 3; 20 ] ~communities:legit;
      mk ~from:4 ~path:[ 666 ] ~communities:forged;
    ]
  in
  fun () -> ignore (validator ~now:0.0 ~prefix:victim candidates)

let bench_event_queue () =
 fun () ->
  let q = Sim.Event_queue.create () in
  for i = 0 to 255 do
    Sim.Event_queue.push q ~time:(float_of_int ((i * 37) mod 97)) i
  done;
  let rec drain () =
    match Sim.Event_queue.pop q with
    | Some _ -> drain ()
    | None -> ()
  in
  drain ()

let bench_topology_derivation () =
 fun () ->
  ignore (Topology.Paper_topologies.build ~seed:0x4d4f4153L ~target_size:25 ())

let tests () =
  [
    Test.make ~name:"fig4+5: measurement pipeline (1/10 archive)"
      (Staged.stage (bench_measurement_pipeline ()));
    Test.make ~name:"fig9: 46-AS scenario, Normal BGP"
      (Staged.stage
         (scenario_runner ~topology:Topology.Paper_topologies.topology_46
            ~deployment:Moas.Deployment.Disabled ~n_attackers:5));
    Test.make ~name:"fig9: 46-AS scenario, Full MOAS"
      (Staged.stage
         (scenario_runner ~topology:Topology.Paper_topologies.topology_46
            ~deployment:Moas.Deployment.Full ~n_attackers:5));
    Test.make ~name:"fig10: 25-AS scenario, Full MOAS"
      (Staged.stage
         (scenario_runner ~topology:Topology.Paper_topologies.topology_25
            ~deployment:Moas.Deployment.Full ~n_attackers:5));
    Test.make ~name:"fig10: 63-AS scenario, Full MOAS"
      (Staged.stage
         (scenario_runner ~topology:Topology.Paper_topologies.topology_63
            ~deployment:Moas.Deployment.Full ~n_attackers:5));
    Test.make ~name:"fig11: 63-AS scenario, Half MOAS"
      (Staged.stage
         (scenario_runner ~topology:Topology.Paper_topologies.topology_63
            ~deployment:(Moas.Deployment.Fraction 0.5) ~n_attackers:5));
    Test.make ~name:"summary: topology derivation (25-AS pipeline)"
      (Staged.stage (bench_topology_derivation ()));
    Test.make ~name:"core: MOAS consistency check + oracle"
      (Staged.stage (bench_moas_check ()));
    Test.make ~name:"core: BGP decision process (12 candidates)"
      (Staged.stage (bench_decision ()));
    Test.make ~name:"substrate: prefix-trie longest match (512 prefixes)"
      (Staged.stage (bench_trie ()));
    Test.make ~name:"substrate: event queue push/pop (256 events)"
      (Staged.stage (bench_event_queue ()));
    Test.make ~name:"substrate: BGP wire encode+decode roundtrip"
      (Staged.stage
         (let update =
            Bgp.Update.announce ~sender:(Asn.make 1)
              {
                Bgp.Route.prefix = victim;
                as_path = Bgp.As_path.of_list [ 1; 2; 3 ];
                origin = Bgp.Route.Igp;
                learned_from = Asn.make 1;
                local_pref = 100;
                communities = Moas.Moas_list.encode (Asn.Set.of_list [ 3; 4 ]);
              }
          in
          let message = Bgp.Wire.of_update update in
          fun () -> ignore (Bgp.Wire.decode (Bgp.Wire.encode message))));
  ]

let run_microbenches () =
  banner "Micro-benchmarks (Bechamel; time per run)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let analysis =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results =
    List.concat_map
      (fun test ->
        let raw = Benchmark.all cfg instances test in
        let ols = Analyze.all analysis Instance.monotonic_clock raw in
        Hashtbl.fold
          (fun name o acc ->
            let ns =
              match Analyze.OLS.estimates o with
              | Some (est :: _) -> est
              | Some [] | None -> nan
            in
            (name, ns) :: acc)
          ols [])
      (tests ())
  in
  let pretty_time ns =
    if Float.is_nan ns then "n/a"
    else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  let rows = List.map (fun (name, ns) -> [ name; pretty_time ns ]) results in
  print_string (Mutil.Text_table.render ~header:[ "benchmark"; "time/run" ] rows)

(* ------------------------------------------------------------------ *)
(* Part 5: large-topology scaling suite (BENCH_3.json).  Generated
   internets well beyond the paper's 63-AS meshes, full MOAS deployment,
   a fixed batch of runs executed on the Exec.Pool at increasing job
   counts.  Wall-clock and merged event counters go to JSON lines; the
   determinism contract (identical outcomes at every job count) is
   checked on the way. *)

let scaling_sizes = [ (200, 4); (500, 10); (1000, 20) ]
let scaling_runs = 8
let scaling_jobs = [ 1; 2; 4; 8 ]

let scaling_params size =
  (* keep the generator's three-tier shape while scaling the node count:
     ~2% tier-1 backbones, ~10% tier-2 transits, the rest stubs *)
  let tier1 = max 3 (size / 50) in
  let tier2 = max 8 (size / 10) in
  {
    Topology.Generate.default_params with
    Topology.Generate.tier1_count = tier1;
    tier2_count = tier2;
    stub_count = size - tier1 - tier2;
  }

let run_scaling ~out () =
  banner "Large-topology scaling (generated internets, Full MOAS)";
  say "   cores online: %d (Domain.recommended_domain_count)"
    (Domain.recommended_domain_count ());
  let cores = string_of_int (Domain.recommended_domain_count ()) in
  let oc = open_out out in
  List.iter
    (fun (size, n_attackers) ->
      let internet =
        Topology.Generate.generate
          (Mutil.Rng.of_int (0x5CA1 + size))
          (scaling_params size)
      in
      let graph = internet.Topology.Generate.graph in
      say "";
      say "-- %d ASes (%d links, %d stubs): %d runs, %d attackers each --"
        (Topology.As_graph.node_count graph)
        (Topology.As_graph.edge_count graph)
        (Asn.Set.cardinal internet.Topology.Generate.stub)
        scaling_runs n_attackers;
      let root = Mutil.Rng.of_int (0xBEAC + size) in
      (* one batch per job count; every task builds its own scenario,
         registry and engine from a pre-split stream, so the batch result
         is identical at every job count *)
      let batch jobs =
        let t0 = Unix.gettimeofday () in
        let results =
          Exec.Pool.map ~jobs
            (fun r ->
              let rng = Mutil.Rng.split_at root r in
              let scenario =
                Attack.Scenario.random rng ~graph
                  ~stub:internet.Topology.Generate.stub ~n_origins:1
                  ~n_attackers ~deployment:Moas.Deployment.Full
              in
              let metrics = Obs.Registry.create () in
              let outcome = Attack.Scenario.run ~metrics rng scenario in
              (metrics, outcome))
            (Array.init scaling_runs Fun.id)
        in
        let elapsed = Unix.gettimeofday () -. t0 in
        let merged = Obs.Registry.create () in
        Array.iter (fun (m, _) -> Obs.Registry.merge ~into:merged m) results;
        (elapsed, merged, Array.map snd results)
      in
      let measured = List.map (fun jobs -> (jobs, batch jobs)) scaling_jobs in
      let signature outcomes =
        Array.to_list
          (Array.map
             (fun o ->
               ( o.Attack.Scenario.fraction_adopting,
                 o.Attack.Scenario.alarm_count,
                 o.Attack.Scenario.updates_sent,
                 o.Attack.Scenario.converged_at ))
             outcomes)
      in
      let base =
        match measured with
        | (_, (_, _, outcomes)) :: _ -> signature outcomes
        | [] -> []
      in
      let deterministic =
        List.for_all
          (fun (_, (_, _, outcomes)) -> signature outcomes = base)
          measured
      in
      let t1, _, _ = List.assoc 1 measured in
      let events_of merged =
        Obs.Registry.counter_value merged "sim_events_executed"
      in
      print_string
        (Mutil.Text_table.render
           ~header:[ "jobs"; "wall clock"; "events/s"; "speedup vs 1 job" ]
           (List.map
              (fun (jobs, (elapsed, merged, _)) ->
                let events = events_of merged in
                [
                  string_of_int jobs;
                  Printf.sprintf "%.3f s" elapsed;
                  Printf.sprintf "%.0f" (float_of_int events /. elapsed);
                  Printf.sprintf "%.2fx" (t1 /. elapsed);
                ])
              measured));
      say "   outcomes identical at every job count: %b" deterministic;
      if not deterministic then (
        close_out oc;
        failwith "scaling suite: outcomes differ across job counts");
      List.iter
        (fun (jobs, (elapsed, merged, _)) ->
          let events = events_of merged in
          let reg = Obs.Registry.create () in
          Obs.Registry.Gauge.set
            (Obs.Registry.gauge reg "scaling_wall_clock_seconds")
            elapsed;
          Obs.Registry.Counter.add
            (Obs.Registry.counter reg "scaling_events_executed")
            events;
          Obs.Registry.Gauge.set
            (Obs.Registry.gauge reg "scaling_events_per_second")
            (float_of_int events /. elapsed);
          Obs.Registry.Gauge.set
            (Obs.Registry.gauge reg "scaling_speedup_vs_one_job")
            (t1 /. elapsed);
          output_string oc
            (Obs.Registry.to_json_lines
               ~extra:
                 [
                   ("workload", Printf.sprintf "scaling-%d-as" size);
                   ("jobs", string_of_int jobs);
                   ("cores", cores);
                   saturated jobs;
                   ("runs", string_of_int scaling_runs);
                 ]
               reg))
        measured)
    scaling_sizes;
  close_out oc;
  say "";
  say "scaling dump written to %s" out

(* ------------------------------------------------------------------ *)
(* Part 6: stream-monitor throughput suite (BENCH_4.json).  The full
   synthetic archive is materialised once as event batches, then replayed
   through the online Stream.Sharded monitor at increasing job counts.
   Wall-clock, updates/s and speedup go to JSON lines; the determinism
   contract (byte-identical report at every job count) is checked on the
   way. *)

let stream_jobs = [ 1; 2; 4; 8 ]
let stream_runs = 3

let run_stream ~out () =
  banner "Stream-monitor throughput (online MOAS pipeline)";
  say "   cores online: %d (Domain.recommended_domain_count)"
    (Domain.recommended_domain_count ());
  let cores = string_of_int (Domain.recommended_domain_count ()) in
  let annotate =
    Stream.Source.trusted_annotator
      ~distrusted:
        (Asn.Set.of_list
           [
             Measurement.Synthetic_routeviews.fault_as_1998;
             Measurement.Synthetic_routeviews.fault_as_2001;
           ])
      ()
  in
  let batches =
    Stream.Source.archive_batches ~annotate
      Measurement.Synthetic_routeviews.default_params
  in
  let total_events =
    Array.fold_left
      (fun acc b -> acc + Array.length b.Stream.Source.events)
      0 batches
  in
  say "   archive: %d day batches, %d update events, %d replays per job count"
    (Array.length batches) total_events stream_runs;
  (* the same event stream re-chunked into pool-sized batches: daily
     batches are far below Sharded.parallel_threshold, so this is the
     workload where the domain pool actually engages *)
  let firehose_chunks =
    let all = Array.concat (Array.to_list (Array.map (fun b -> b.Stream.Source.events) batches)) in
    let chunk = 2 * Stream.Sharded.parallel_threshold in
    let n = (Array.length all + chunk - 1) / chunk in
    Array.init n (fun i ->
        let lo = i * chunk in
        let events = Array.sub all lo (min chunk (Array.length all - lo)) in
        (events.(Array.length events - 1).Stream.Monitor.time, events))
  in
  let replay_daily jobs =
    let monitor = Stream.Sharded.create ~jobs Stream.Monitor.default_config in
    Array.iter
      (fun b ->
        Stream.Sharded.ingest_batch ~day_end:true monitor
          ~time:b.Stream.Source.time b.Stream.Source.events)
      batches;
    monitor
  in
  let replay_firehose jobs =
    let monitor = Stream.Sharded.create ~jobs Stream.Monitor.default_config in
    Array.iter
      (fun (time, events) -> Stream.Sharded.ingest_batch monitor ~time events)
      firehose_chunks;
    monitor
  in
  let measure replay =
    List.map
      (fun jobs ->
        let t0 = Unix.gettimeofday () in
        let monitor = ref (replay jobs) in
        for _ = 2 to stream_runs do
          monitor := replay jobs
        done;
        let elapsed =
          (Unix.gettimeofday () -. t0) /. float_of_int stream_runs
        in
        (jobs, elapsed, Stream.Report.render (Stream.Sharded.snapshot !monitor)))
      stream_jobs
  in
  let oc = open_out out in
  let run_workload ~name ~batch_count replay =
    say "";
    say "-- workload %s: %d batches --" name batch_count;
    let measured = measure replay in
    let base_report = match measured with (_, _, r) :: _ -> r | [] -> "" in
    let deterministic =
      List.for_all (fun (_, _, r) -> String.equal r base_report) measured
    in
    let t1 = match measured with (_, e, _) :: _ -> e | [] -> nan in
    print_string
      (Mutil.Text_table.render
         ~header:[ "jobs"; "wall clock"; "updates/s"; "speedup vs 1 job" ]
         (List.map
            (fun (jobs, elapsed, _) ->
              [
                string_of_int jobs;
                Printf.sprintf "%.3f s" elapsed;
                Printf.sprintf "%.0f" (float_of_int total_events /. elapsed);
                Printf.sprintf "%.2fx" (t1 /. elapsed);
              ])
            measured));
    say "   reports byte-identical at every job count: %b" deterministic;
    if not deterministic then (
      close_out oc;
      failwith "stream suite: reports differ across job counts");
    List.iter
      (fun (jobs, elapsed, _) ->
        let reg = Obs.Registry.create () in
        Obs.Registry.Gauge.set
          (Obs.Registry.gauge reg "stream_wall_clock_seconds")
          elapsed;
        Obs.Registry.Counter.add
          (Obs.Registry.counter reg "stream_updates_ingested")
          total_events;
        Obs.Registry.Gauge.set
          (Obs.Registry.gauge reg "stream_updates_per_second")
          (float_of_int total_events /. elapsed);
        Obs.Registry.Gauge.set
          (Obs.Registry.gauge reg "stream_speedup_vs_one_job")
          (t1 /. elapsed);
        output_string oc
          (Obs.Registry.to_json_lines
             ~extra:
               [
                 ("workload", name);
                 ("jobs", string_of_int jobs);
                 ("cores", cores);
                 saturated jobs;
                 ("runs", string_of_int stream_runs);
                 ("batches", string_of_int batch_count);
                 ("events", string_of_int total_events);
               ]
             reg))
      measured
  in
  run_workload ~name:"stream-replay-daily" ~batch_count:(Array.length batches)
    replay_daily;
  run_workload ~name:"stream-firehose"
    ~batch_count:(Array.length firehose_chunks)
    replay_firehose;
  close_out oc;
  say "";
  say "stream dump written to %s" out

(* ------------------------------------------------------------------ *)
(* Part 7: collector-mesh suite (BENCH_5.json).  The synthetic archive is
   split over N simulated collectors (65% coverage, every event forced to
   at least one), then the whole mesh — per-vantage monitors plus the
   merged global view — replays concurrently on the Exec.Pool at
   increasing job counts.  Because the deduplicated union is lossless, the
   merged report must be byte-identical across every (vantages, jobs)
   grid point and for a reversed vantage ordering; the suite asserts
   that. *)

let collect_vantage_counts = [ 2; 4; 8 ]
let collect_jobs = [ 1; 2; 4; 8 ]
let collect_runs = 2
let collect_coverage = 0.65

let run_collect_bench ~out () =
  banner "Collector mesh (multi-vantage correlation pipeline)";
  say "   cores online: %d (Domain.recommended_domain_count)"
    (Domain.recommended_domain_count ());
  let cores = string_of_int (Domain.recommended_domain_count ()) in
  let annotate =
    Stream.Source.trusted_annotator
      ~distrusted:
        (Asn.Set.of_list
           [
             Measurement.Synthetic_routeviews.fault_as_1998;
             Measurement.Synthetic_routeviews.fault_as_2001;
           ])
      ()
  in
  let batches =
    Stream.Source.archive_batches ~annotate
      Measurement.Synthetic_routeviews.default_params
  in
  let archive_events =
    Array.fold_left
      (fun acc b -> acc + Array.length b.Stream.Source.events)
      0 batches
  in
  say "   archive: %d update events split at %.0f%% coverage, %d runs per \
       grid point"
    archive_events (100.0 *. collect_coverage) collect_runs;
  let oc = open_out out in
  let reference_report = ref None in
  List.iter
    (fun vantages ->
      let streams =
        Collect.Vantage.replay ~coverage:collect_coverage ~vantages
          ~seed:0xC011EC7L batches
      in
      let stream_events =
        List.fold_left (fun acc (_, evs) -> acc + Array.length evs) 0 streams
      in
      say "";
      say "-- %d vantages: %d per-vantage events (%.2fx the archive) --"
        vantages stream_events
        (float_of_int stream_events /. float_of_int archive_events);
      let measured =
        List.map
          (fun jobs ->
            let t0 = Unix.gettimeofday () in
            let result = ref (Collect.Mesh.run ~jobs Stream.Monitor.default_config streams) in
            for _ = 2 to collect_runs do
              result := Collect.Mesh.run ~jobs Stream.Monitor.default_config streams
            done;
            let elapsed =
              (Unix.gettimeofday () -. t0) /. float_of_int collect_runs
            in
            (jobs, elapsed, !result))
          collect_jobs
      in
      (* ingested per mesh run: every vantage stream plus the merged view *)
      let total_events =
        match measured with
        | (_, _, r) :: _ -> stream_events + r.Collect.Mesh.r_merged_events
        | [] -> 0
      in
      let t1 = match measured with (_, e, _) :: _ -> e | [] -> nan in
      print_string
        (Mutil.Text_table.render
           ~header:[ "jobs"; "wall clock"; "events/s"; "speedup vs 1 job" ]
           (List.map
              (fun (jobs, elapsed, _) ->
                [
                  string_of_int jobs;
                  Printf.sprintf "%.3f s" elapsed;
                  Printf.sprintf "%.0f" (float_of_int total_events /. elapsed);
                  Printf.sprintf "%.2fx" (t1 /. elapsed);
                ])
              measured));
      (* identity: same merged report at every job count, every vantage
         count (the union is lossless) and for a reversed stream order *)
      let reports =
        List.map
          (fun (_, _, r) -> Stream.Report.render r.Collect.Mesh.r_merged)
          measured
      in
      let reversed =
        Stream.Report.render
          (Collect.Mesh.run ~jobs:2 Stream.Monitor.default_config
             (List.rev streams))
            .Collect.Mesh.r_merged
      in
      let reference =
        match !reference_report with
        | Some r -> r
        | None ->
          let r = List.hd reports in
          reference_report := Some r;
          r
      in
      let deterministic =
        List.for_all (String.equal reference) (reversed :: reports)
      in
      say "   merged report byte-identical across jobs, vantage counts and \
           orderings: %b"
        deterministic;
      if not deterministic then (
        close_out oc;
        failwith "collect suite: merged reports differ across the grid");
      List.iter
        (fun (jobs, elapsed, r) ->
          let reg = Obs.Registry.create () in
          Obs.Registry.Gauge.set
            (Obs.Registry.gauge reg "collect_wall_clock_seconds")
            elapsed;
          Obs.Registry.Counter.add
            (Obs.Registry.counter reg "collect_events_ingested")
            total_events;
          Obs.Registry.Counter.add
            (Obs.Registry.counter reg "collect_merge_duplicates")
            r.Collect.Mesh.r_duplicates;
          Obs.Registry.Gauge.set
            (Obs.Registry.gauge reg "collect_events_per_second")
            (float_of_int total_events /. elapsed);
          Obs.Registry.Gauge.set
            (Obs.Registry.gauge reg "collect_speedup_vs_one_job")
            (t1 /. elapsed);
          output_string oc
            (Obs.Registry.to_json_lines
               ~extra:
                 [
                   ("workload", "collect-mesh");
                   ("vantages", string_of_int vantages);
                   ("jobs", string_of_int jobs);
                   ("cores", cores);
                   saturated jobs;
                   ("runs", string_of_int collect_runs);
                   ("events", string_of_int total_events);
                 ]
               reg))
        measured)
    collect_vantage_counts;
  close_out oc;
  say "";
  say "collect dump written to %s" out

(* ------------------------------------------------------------------ *)
(* Part 8: serve-daemon load generator (BENCH_6.json).  An episode store
   built from a mesh run over the synthetic archive is put behind
   Serve.Server, then a pool of concurrent clients hammers it with a
   deterministic mix of typed queries — every request and response
   crossing the full MOASSERV wire codec.  Per-request latencies give
   p50/p99; throughput and the server-side request histogram go to JSON
   lines.  The suite fails outright on a zero measured throughput. *)

let serve_client_counts = [ 1; 2; 4; 8 ]
let serve_vantages = 4
let serve_coverage = 0.65

let serve_smoke_params =
  {
    Measurement.Synthetic_routeviews.default_params with
    Measurement.Synthetic_routeviews.universe_size = 400;
    initial_long_lived = 65;
    final_long_lived = 139;
    one_day_churn = 24;
    medium_churn = 9;
    event_1998_size = 114;
    event_2001_size = 97;
  }

(* The store + annotated archive batches every serving bench runs over:
   a mesh run across [serve_vantages] partial-coverage vantages of the
   synthetic RouteViews archive. *)
let serve_fixture ~smoke =
  let annotate =
    Stream.Source.trusted_annotator
      ~distrusted:
        (Asn.Set.of_list
           [
             Measurement.Synthetic_routeviews.fault_as_1998;
             Measurement.Synthetic_routeviews.fault_as_2001;
           ])
      ()
  in
  let params =
    if smoke then serve_smoke_params
    else Measurement.Synthetic_routeviews.default_params
  in
  let batches = Stream.Source.archive_batches ~annotate params in
  let streams =
    Collect.Vantage.replay ~coverage:serve_coverage ~vantages:serve_vantages
      ~seed:0xC011EC7L batches
  in
  let store =
    Collect.Store.of_correlation
      (Collect.Correlator.of_result
         (Collect.Mesh.run Stream.Monitor.default_config streams))
  in
  (store, batches)

let run_serve_bench ~smoke ~out () =
  banner "Serve daemon load generator (MOASSERV wire protocol)";
  say "   cores online: %d (Domain.recommended_domain_count)"
    (Domain.recommended_domain_count ());
  let cores = string_of_int (Domain.recommended_domain_count ()) in
  let store, _batches = serve_fixture ~smoke in
  let entries = Array.of_list (Collect.Store.entries store) in
  let n_entries = Array.length entries in
  let total_requests = if smoke then 4_000 else 60_000 in
  let client_counts = if smoke then [ 4 ] else serve_client_counts in
  say "   store: %d episodes over %d vantages; %d requests per grid point"
    n_entries serve_vantages total_requests;
  (* a deterministic query mix cycling over the stored episodes: exact
     prefix, covered prefix, origin membership, visibility floor, count *)
  let request i =
    let e = entries.(i mod n_entries) in
    let open Collect.Query in
    match i mod 5 with
    | 0 -> Serve.Proto.Query (empty |> prefix e.Collect.Correlator.x_prefix)
    | 1 ->
      Serve.Proto.Query
        (empty |> prefix e.Collect.Correlator.x_prefix |> covered)
    | 2 ->
      Serve.Proto.Count
        (match Asn.Set.min_elt_opt e.Collect.Correlator.x_origins with
        | Some a -> empty |> origin a
        | None -> empty)
    | 3 -> Serve.Proto.Query (empty |> min_visibility (1 + (i mod serve_vantages)))
    | _ -> Serve.Proto.Count empty
  in
  let oc = open_out out in
  let measured =
    List.map
      (fun clients ->
        let metrics = Obs.Registry.create () in
        let server = Serve.Server.create ~metrics ~store () in
        let per_client = total_requests / clients in
        let t0 = Unix.gettimeofday () in
        let latency_arrays =
          Exec.Pool.map ~jobs:clients
            (fun c ->
              let client = Serve.Client.connect server in
              let lats = Array.make per_client 0.0 in
              for k = 0 to per_client - 1 do
                let t = Unix.gettimeofday () in
                (match Serve.Client.call client (request ((c * per_client) + k)) with
                | Serve.Proto.Entries _ | Serve.Proto.Count_is _ -> ()
                | r ->
                  failwith
                    ("serve suite: unexpected response "
                    ^ Serve.Proto.render_response r));
                lats.(k) <- Unix.gettimeofday () -. t
              done;
              Serve.Client.close client;
              lats)
            (Array.init clients Fun.id)
        in
        let elapsed = Unix.gettimeofday () -. t0 in
        let lats = Array.concat (Array.to_list latency_arrays) in
        Array.sort compare lats;
        let n = Array.length lats in
        let pct p = lats.(min (n - 1) (p * n / 100)) in
        let qps = float_of_int n /. elapsed in
        if not (qps > 0.0) then (
          close_out oc;
          failwith "serve suite: zero measured throughput");
        (clients, elapsed, n, qps, pct 50, pct 99, metrics))
      client_counts
  in
  print_string
    (Mutil.Text_table.render
       ~header:[ "clients"; "wall clock"; "queries/s"; "p50"; "p99" ]
       (List.map
          (fun (clients, elapsed, _, qps, p50, p99, _) ->
            [
              string_of_int clients;
              Printf.sprintf "%.3f s" elapsed;
              Printf.sprintf "%.0f" qps;
              Printf.sprintf "%.1f us" (1e6 *. p50);
              Printf.sprintf "%.1f us" (1e6 *. p99);
            ])
          measured));
  List.iter
    (fun (clients, elapsed, n, qps, p50, p99, server_metrics) ->
      let extra =
        [
          ("workload", "serve-load");
          ("clients", string_of_int clients);
          ("cores", cores);
          saturated clients;
          ("entries", string_of_int n_entries);
        ]
      in
      let reg = Obs.Registry.create () in
      Obs.Registry.Counter.add (Obs.Registry.counter reg "serve_queries_total") n;
      Obs.Registry.Gauge.set
        (Obs.Registry.gauge reg "serve_wall_clock_seconds")
        elapsed;
      Obs.Registry.Gauge.set
        (Obs.Registry.gauge reg "serve_queries_per_second")
        qps;
      Obs.Registry.Gauge.set
        (Obs.Registry.gauge reg "serve_latency_p50_seconds")
        p50;
      Obs.Registry.Gauge.set
        (Obs.Registry.gauge reg "serve_latency_p99_seconds")
        p99;
      output_string oc (Obs.Registry.to_json_lines ~extra reg);
      (* the daemon's own instruments: per-kind request counters and the
         server-side latency histogram *)
      output_string oc
        (Obs.Registry.to_json_lines
           ~extra:(("side", "daemon") :: extra)
           server_metrics))
    measured;
  close_out oc;
  say "";
  say "serve dump written to %s" out

(* ------------------------------------------------------------------ *)
(* Part 9: resilience grid (BENCH_7.json).  The same served store under
   three arms: [no-fault] (pristine transport, non-retrying client),
   [lossy-transport] (Chaos.transport with the lossy plan between a
   retrying client and the server — dropped requests and replies cost
   real retries), and [degraded-mode] (the live tail killed mid-ingest
   by a failing source, then the read-only server hammered with the same
   query mix).  Each arm stamps throughput and p50/p99 latency; the
   suite fails on a zero throughput or on a degraded arm that is not
   actually degraded. *)

let chaos_retry =
  (* real backoff sleeps would measure the policy, not the server: keep
     the retry schedule but make the pauses negligible *)
  {
    Serve.Client.default_retry with
    Serve.Client.attempts = 4;
    base_delay = 1e-4;
    max_delay = 1e-3;
  }

let run_chaos_bench ~smoke ~out () =
  banner "Resilience grid (chaos transport + degraded mode)";
  let cores = string_of_int (Domain.recommended_domain_count ()) in
  let store, batches = serve_fixture ~smoke in
  let entries = Array.of_list (Collect.Store.entries store) in
  let n_entries = Array.length entries in
  let total_requests = if smoke then 2_000 else 20_000 in
  say "   store: %d episodes over %d vantages; %d requests per arm"
    n_entries serve_vantages total_requests;
  let request i =
    let e = entries.(i mod n_entries) in
    let open Collect.Query in
    match i mod 5 with
    | 0 -> Serve.Proto.Query (empty |> prefix e.Collect.Correlator.x_prefix)
    | 1 ->
      Serve.Proto.Query
        (empty |> prefix e.Collect.Correlator.x_prefix |> covered)
    | 2 ->
      Serve.Proto.Count
        (match Asn.Set.min_elt_opt e.Collect.Correlator.x_origins with
        | Some a -> empty |> origin a
        | None -> empty)
    | 3 -> Serve.Proto.Query (empty |> min_visibility (1 + (i mod serve_vantages)))
    | _ -> Serve.Proto.Count empty
  in
  let root = Mutil.Rng.create ~seed:0xC4A05L in
  (* each arm yields (client, server metrics registry, server) *)
  let arms =
    [
      ( "no-fault",
        fun metrics ->
          let server = Serve.Server.create ~metrics ~store () in
          (Serve.Client.connect server, server) );
      ( "lossy-transport",
        fun metrics ->
          let server = Serve.Server.create ~metrics ~store () in
          let transport =
            Chaos.transport
              ~rng:(Mutil.Rng.split_at root 1)
              ~plan:Chaos.lossy server
          in
          ( Serve.Client.connect_via ~retry:chaos_retry
              ~rng:(Mutil.Rng.split_at root 2)
              transport,
            server ) );
      ( "degraded-mode",
        fun metrics ->
          let server = Serve.Server.create ~metrics ~store () in
          let keep = if smoke then 20 else 60 in
          let source =
            Chaos.failing_source ~after:keep (Array.to_list batches)
          in
          ignore (Serve.Server.tail server source);
          (match Serve.Server.health server with
          | Serve.Server.Degraded _ -> ()
          | Serve.Server.Serving ->
            failwith "chaos suite: degraded arm is still serving");
          (Serve.Client.connect server, server) );
    ]
  in
  let oc = open_out out in
  let measured =
    List.map
      (fun (name, build) ->
        let metrics = Obs.Registry.create () in
        let client, server = build metrics in
        let lats = Array.make total_requests 0.0 in
        let failed = ref 0 in
        let rejected = ref 0 in
        let t0 = Unix.gettimeofday () in
        for i = 0 to total_requests - 1 do
          let t = Unix.gettimeofday () in
          (match Serve.Client.call client (request i) with
          | Serve.Proto.Entries _ | Serve.Proto.Count_is _ -> ()
          | Serve.Proto.Rejected _ -> incr rejected
          | r ->
            failwith
              ("chaos suite: unexpected response "
              ^ Serve.Proto.render_response r)
          | exception Serve.Client.Failed _ -> incr failed);
          lats.(i) <- Unix.gettimeofday () -. t
        done;
        let elapsed = Unix.gettimeofday () -. t0 in
        Serve.Client.close client;
        Array.sort compare lats;
        let pct p = lats.(min (total_requests - 1) (p * total_requests / 100)) in
        let qps = float_of_int total_requests /. elapsed in
        if not (qps > 0.0) then begin
          close_out oc;
          failwith "chaos suite: zero measured throughput"
        end;
        (name, elapsed, qps, pct 50, pct 99, !failed, !rejected,
         Serve.Client.retries client, server, metrics))
      arms
  in
  print_string
    (Mutil.Text_table.render
       ~header:
         [ "arm"; "wall clock"; "queries/s"; "p50"; "p99"; "retries"; "failed" ]
       (List.map
          (fun (name, elapsed, qps, p50, p99, failed, _, retries, _, _) ->
            [
              name;
              Printf.sprintf "%.3f s" elapsed;
              Printf.sprintf "%.0f" qps;
              Printf.sprintf "%.1f us" (1e6 *. p50);
              Printf.sprintf "%.1f us" (1e6 *. p99);
              string_of_int retries;
              string_of_int failed;
            ])
          measured));
  List.iter
    (fun (name, elapsed, qps, p50, p99, failed, rejected, retries, server,
          server_metrics) ->
      let extra =
        [
          ("workload", "chaos-resilience");
          ("arm", name);
          ("cores", cores);
          ("entries", string_of_int n_entries);
        ]
      in
      let reg = Obs.Registry.create () in
      Obs.Registry.Counter.add
        (Obs.Registry.counter reg "chaos_requests_total")
        total_requests;
      Obs.Registry.Counter.add
        (Obs.Registry.counter reg "chaos_failed_total")
        failed;
      Obs.Registry.Counter.add
        (Obs.Registry.counter reg "chaos_rejected_total")
        rejected;
      Obs.Registry.Counter.add
        (Obs.Registry.counter reg "chaos_retries_total")
        retries;
      Obs.Registry.Counter.add
        (Obs.Registry.counter reg "chaos_shed_total")
        (Serve.Server.shed_total server);
      Obs.Registry.Counter.add
        (Obs.Registry.counter reg "chaos_timeouts_total")
        (Serve.Server.timeout_total server);
      Obs.Registry.Gauge.set
        (Obs.Registry.gauge reg "chaos_wall_clock_seconds")
        elapsed;
      Obs.Registry.Gauge.set
        (Obs.Registry.gauge reg "chaos_queries_per_second")
        qps;
      Obs.Registry.Gauge.set
        (Obs.Registry.gauge reg "chaos_latency_p50_seconds")
        p50;
      Obs.Registry.Gauge.set
        (Obs.Registry.gauge reg "chaos_latency_p99_seconds")
        p99;
      output_string oc (Obs.Registry.to_json_lines ~extra reg);
      output_string oc
        (Obs.Registry.to_json_lines
           ~extra:(("side", "daemon") :: extra)
           server_metrics))
    measured;
  close_out oc;
  say "";
  say "chaos dump written to %s" out

(* ------------------------------------------------------------------ *)
(* Part 10: allocation-discipline ingest grid (BENCH_8.json).  The two
   hottest end-to-end ingest workloads — the Part 6 stream firehose and
   the Part 7 collector mesh — re-run with GC telemetry: every grid
   point stamps minor words allocated per ingested event alongside
   throughput, so the allocation discipline of the decode / intern /
   partition / merge path is a regression-guarded number rather than a
   hope.  Report byte-identity across the grid is asserted exactly as in
   the source suites.  [--ingest-budget] turns the jobs=1 minor-words
   figure into a hard gate for CI; on a machine with at least four cores
   the suite also fails outright if jobs=4 throughput drops below
   jobs=1. *)

let ingest_jobs = [ 1; 2; 4; 8 ]
let ingest_vantage_counts = [ 2; 4; 8 ]

(* the 1/10-size archive used for CI smoke runs *)
let ingest_smoke_params =
  {
    Measurement.Synthetic_routeviews.default_params with
    Measurement.Synthetic_routeviews.universe_size = 400;
    initial_long_lived = 65;
    final_long_lived = 139;
    one_day_churn = 24;
    medium_churn = 9;
    event_1998_size = 114;
    event_2001_size = 97;
  }

let run_ingest_bench ~smoke ~budget ~out () =
  banner "Allocation-free ingest grid (GC-stamped throughput)";
  let cores_n = Domain.recommended_domain_count () in
  say "   cores online: %d (Domain.recommended_domain_count)" cores_n;
  let cores = string_of_int cores_n in
  let annotate =
    Stream.Source.trusted_annotator
      ~distrusted:
        (Asn.Set.of_list
           [
             Measurement.Synthetic_routeviews.fault_as_1998;
             Measurement.Synthetic_routeviews.fault_as_2001;
           ])
      ()
  in
  let params =
    if smoke then ingest_smoke_params
    else Measurement.Synthetic_routeviews.default_params
  in
  let batches = Stream.Source.archive_batches ~annotate params in
  let archive_events =
    Array.fold_left
      (fun acc b -> acc + Array.length b.Stream.Source.events)
      0 batches
  in
  let runs = if smoke then 2 else 3 in
  say "   archive: %d day batches, %d update events, %d runs per grid point"
    (Array.length batches) archive_events runs;
  let oc = open_out out in
  let measure replay jobs =
    let w0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    let state = ref (replay jobs) in
    for _ = 2 to runs do
      state := replay jobs
    done;
    let elapsed = (Unix.gettimeofday () -. t0) /. float_of_int runs in
    let words = (Gc.minor_words () -. w0) /. float_of_int runs in
    (elapsed, words, !state)
  in
  (* measured: (jobs, elapsed, minor words per event, rendered report) *)
  let emit ~workload ~extra ~events measured =
    let t1 = match measured with (_, e, _, _) :: _ -> e | [] -> nan in
    print_string
      (Mutil.Text_table.render
         ~header:
           [ "jobs"; "wall clock"; "events/s"; "speedup"; "minor words/event" ]
         (List.map
            (fun (jobs, elapsed, wpe, _) ->
              [
                string_of_int jobs;
                Printf.sprintf "%.3f s" elapsed;
                Printf.sprintf "%.0f" (float_of_int events /. elapsed);
                Printf.sprintf "%.2fx" (t1 /. elapsed);
                Printf.sprintf "%.1f" wpe;
              ])
            measured));
    (match measured with
    | (_, _, _, r0) :: rest ->
      let deterministic =
        List.for_all (fun (_, _, _, r) -> String.equal r r0) rest
      in
      say "   reports byte-identical at every job count: %b" deterministic;
      if not deterministic then (
        close_out oc;
        failwith
          (Printf.sprintf "ingest suite: %s reports differ across job counts"
             workload))
    | [] -> ());
    List.iter
      (fun (jobs, elapsed, wpe, _) ->
        let reg = Obs.Registry.create () in
        Obs.Registry.Gauge.set
          (Obs.Registry.gauge reg "ingest_wall_clock_seconds")
          elapsed;
        Obs.Registry.Counter.add
          (Obs.Registry.counter reg "ingest_events_total")
          events;
        Obs.Registry.Gauge.set
          (Obs.Registry.gauge reg "ingest_events_per_second")
          (float_of_int events /. elapsed);
        Obs.Registry.Gauge.set
          (Obs.Registry.gauge reg "ingest_speedup_vs_one_job")
          (t1 /. elapsed);
        Obs.Registry.Gauge.set
          (Obs.Registry.gauge reg "ingest_minor_words_per_event")
          wpe;
        output_string oc
          (Obs.Registry.to_json_lines
             ~extra:
               (("workload", workload)
               :: ("jobs", string_of_int jobs)
               :: ("cores", cores)
               :: saturated jobs
               :: ("runs", string_of_int runs)
               :: ("events", string_of_int events)
               :: extra)
             reg))
      measured;
    (* per-machine guards: the allocation budget at jobs=1, and scaling
       monotonicity where the machine can actually express it *)
    match measured with
    | (1, elapsed1, wpe1, _) :: _ ->
      if budget > 0.0 && wpe1 > budget then (
        close_out oc;
        failwith
          (Printf.sprintf
             "ingest suite: %s allocates %.1f minor words/event at jobs=1, \
              budget is %.1f"
             workload wpe1 budget));
      (match List.find_opt (fun (j, _, _, _) -> j = 4) measured with
      | Some (_, elapsed4, _, _) when cores_n >= 4 && elapsed4 > elapsed1 ->
        close_out oc;
        failwith
          (Printf.sprintf
             "ingest suite: %s is slower at jobs=4 than jobs=1 on a %d-core \
              machine"
             workload cores_n)
      | _ -> ())
    | _ -> ()
  in
  (* workload 1: the stream firehose — pool-sized chunks through the
     sharded monitor (identical construction to Part 6) *)
  say "";
  say "-- workload stream-firehose --";
  let firehose_chunks =
    let all =
      Array.concat
        (Array.to_list (Array.map (fun b -> b.Stream.Source.events) batches))
    in
    let chunk = 2 * Stream.Sharded.parallel_threshold in
    let n = (Array.length all + chunk - 1) / chunk in
    Array.init n (fun i ->
        let lo = i * chunk in
        let events = Array.sub all lo (min chunk (Array.length all - lo)) in
        (events.(Array.length events - 1).Stream.Monitor.time, events))
  in
  let replay_firehose jobs =
    let monitor = Stream.Sharded.create ~jobs Stream.Monitor.default_config in
    Array.iter
      (fun (time, events) -> Stream.Sharded.ingest_batch monitor ~time events)
      firehose_chunks;
    monitor
  in
  emit ~workload:"stream-firehose" ~extra:[] ~events:archive_events
    (List.map
       (fun jobs ->
         let elapsed, words, monitor = measure replay_firehose jobs in
         ( jobs,
           elapsed,
           words /. float_of_int archive_events,
           Stream.Report.render (Stream.Sharded.snapshot monitor) ))
       ingest_jobs);
  (* workload 2: the collector mesh (identical construction to Part 7);
     the lossless union makes the merged report one fixed reference
     across vantage counts too *)
  let reference_report = ref None in
  List.iter
    (fun vantages ->
      let streams =
        Collect.Vantage.replay ~coverage:collect_coverage ~vantages
          ~seed:0xC011EC7L batches
      in
      let stream_events =
        List.fold_left (fun acc (_, evs) -> acc + Array.length evs) 0 streams
      in
      say "";
      say "-- workload collect-mesh: %d vantages --" vantages;
      let replay jobs =
        Collect.Mesh.run ~jobs Stream.Monitor.default_config streams
      in
      let measured =
        List.map
          (fun jobs ->
            let elapsed, words, r = measure replay jobs in
            let events = stream_events + r.Collect.Mesh.r_merged_events in
            ( jobs,
              elapsed,
              words /. float_of_int events,
              (events, Stream.Report.render r.Collect.Mesh.r_merged) ))
          ingest_jobs
      in
      let events =
        match measured with (_, _, _, (e, _)) :: _ -> e | [] -> 0
      in
      (match (!reference_report, measured) with
      | Some r0, (_, _, _, (_, r)) :: _ when not (String.equal r0 r) ->
        close_out oc;
        failwith "ingest suite: merged report differs across vantage counts"
      | None, (_, _, _, (_, r)) :: _ -> reference_report := Some r
      | _ -> ());
      emit ~workload:"collect-mesh"
        ~extra:[ ("vantages", string_of_int vantages) ]
        ~events
        (List.map (fun (j, e, w, (_, r)) -> (j, e, w, r)) measured))
    ingest_vantage_counts;
  close_out oc;
  say "";
  say "ingest dump written to %s" out

(* ------------------------------------------------------------------ *)
(* Part 11: classifier corpus/training grid (BENCH_9.json).  The
   lib/classify pipeline staged — parallel corpus capture, logistic +
   stump training, full train/eval — across corpus size × job count.
   Per grid point: stage wall-clocks and training throughput
   (examples/s), with the rendered evaluation report asserted
   byte-identical at every job count, exactly the CLI's determinism
   contract.  A zero training throughput fails the suite outright, so
   the CI smoke run guards against a silently-empty corpus. *)

let classify_jobs = [ 1; 2; 4; 8 ]
let classify_seed = 0xC1A55L

let run_classify_bench ~smoke ~out () =
  banner "Classifier corpus/training grid";
  let cores_n = Domain.recommended_domain_count () in
  say "   cores online: %d (Domain.recommended_domain_count)" cores_n;
  let cores = string_of_int cores_n in
  let oc = open_out out in
  (* the paper topologies are memoised: build them outside the timed
     region so the first grid point is not charged for derivation *)
  if smoke then ignore (Topology.Paper_topologies.topology_25 ())
  else ignore (Topology.Paper_topologies.all ());
  let corpora =
    if smoke then [ ("smoke", true) ] else [ ("smoke", true); ("full", false) ]
  in
  List.iter
    (fun (label, corpus_smoke) ->
      say "";
      say "-- corpus %s --" label;
      let measured =
        List.map
          (fun jobs ->
            let t0 = Unix.gettimeofday () in
            let corpus =
              Classify.Corpus.build ~jobs ~smoke:corpus_smoke
                ~seed:classify_seed ()
            in
            let t_corpus = Unix.gettimeofday () -. t0 in
            let train, _ = Classify.Corpus.split corpus in
            let training =
              List.map
                (fun ex ->
                  (ex.Classify.Corpus.ex_features, ex.Classify.Corpus.ex_label))
                train
            in
            let t1 = Unix.gettimeofday () in
            ignore
              (Classify.Model.train_logistic ~dim:Classify.Features.dim
                 training);
            ignore
              (Classify.Model.train_stumps ~dim:Classify.Features.dim training);
            let t_train = Unix.gettimeofday () -. t1 in
            let t2 = Unix.gettimeofday () in
            let ev = Classify.Eval.of_corpus corpus in
            let t_eval = Unix.gettimeofday () -. t2 in
            let report = Classify.Eval.render ev.Classify.Eval.ev_report in
            ( jobs,
              corpus,
              List.length train,
              t_corpus,
              t_train,
              t_eval,
              report ))
          classify_jobs
      in
      print_string
        (Mutil.Text_table.render
           ~header:
             [
               "jobs";
               "corpus";
               "train";
               "train+eval";
               "examples";
               "train ex/s";
             ]
           (List.map
              (fun (jobs, corpus, train_n, t_corpus, t_train, t_eval, _) ->
                [
                  string_of_int jobs;
                  Printf.sprintf "%.3f s" t_corpus;
                  Printf.sprintf "%.3f s" t_train;
                  Printf.sprintf "%.3f s" t_eval;
                  string_of_int
                    (List.length corpus.Classify.Corpus.c_examples);
                  Printf.sprintf "%.0f" (float_of_int train_n /. t_train);
                ])
              measured));
      (match measured with
      | (_, _, _, _, _, _, r0) :: rest ->
        let deterministic =
          List.for_all (fun (_, _, _, _, _, _, r) -> String.equal r r0) rest
        in
        say "   reports byte-identical at every job count: %b" deterministic;
        if not deterministic then (
          close_out oc;
          failwith
            (Printf.sprintf
               "classify suite: %s reports differ across job counts" label))
      | [] -> ());
      List.iter
        (fun (jobs, corpus, train_n, t_corpus, t_train, t_eval, _) ->
          let throughput = float_of_int train_n /. t_train in
          if not (throughput > 0.0) then (
            close_out oc;
            failwith
              (Printf.sprintf
                 "classify suite: %s training throughput is zero at jobs=%d"
                 label jobs));
          let reg = Obs.Registry.create () in
          Obs.Registry.Counter.add
            (Obs.Registry.counter reg "classify_runs")
            corpus.Classify.Corpus.c_runs;
          Obs.Registry.Counter.add
            (Obs.Registry.counter reg "classify_examples")
            (List.length corpus.Classify.Corpus.c_examples);
          Obs.Registry.Counter.add
            (Obs.Registry.counter reg "classify_train_examples")
            train_n;
          Obs.Registry.Gauge.set
            (Obs.Registry.gauge reg "classify_corpus_seconds")
            t_corpus;
          Obs.Registry.Gauge.set
            (Obs.Registry.gauge reg "classify_train_seconds")
            t_train;
          Obs.Registry.Gauge.set
            (Obs.Registry.gauge reg "classify_eval_seconds")
            t_eval;
          Obs.Registry.Gauge.set
            (Obs.Registry.gauge reg "classify_train_examples_per_second")
            throughput;
          output_string oc
            (Obs.Registry.to_json_lines
               ~extra:
                 (("workload", "classify")
                 :: ("corpus", label)
                 :: ("jobs", string_of_int jobs)
                 :: ("cores", cores)
                 :: [ saturated jobs ])
               reg))
        measured)
    corpora;
  close_out oc;
  say "";
  say "classify dump written to %s" out

(* Part 12: community-telemetry head-to-head grid (BENCH_10.json).  The
   Experiments.Community evaluation — every scenario arm against five
   detectors under the community usage-policy model — at each job count.
   Per grid point: wall-clock, watch-observation throughput (events/s)
   and the per-arm precision/recall/F1 of every detector, with the
   rendered report asserted byte-identical across the whole grid.  Zero
   detection throughput or a broken Section-4.3 gap (scrubbing must
   blind the MOAS list while the community backend keeps firing) fails
   the suite outright. *)

let community_bench_jobs = [ 1; 2; 4; 8 ]

let run_community_bench ~smoke ~out () =
  banner "Community-telemetry head-to-head grid";
  let cores_n = Domain.recommended_domain_count () in
  say "   cores online: %d (Domain.recommended_domain_count)" cores_n;
  let cores = string_of_int cores_n in
  let oc = open_out out in
  (* memoised topologies: derive them outside the timed region *)
  if smoke then ignore (Topology.Paper_topologies.topology_25 ())
  else ignore (Topology.Paper_topologies.all ());
  let measured =
    List.map
      (fun jobs ->
        let t0 = Unix.gettimeofday () in
        let result = Experiments.Community.evaluate ~smoke ~jobs () in
        let elapsed = Unix.gettimeofday () -. t0 in
        (jobs, result, elapsed, Experiments.Community.render result))
      community_bench_jobs
  in
  print_string
    (Mutil.Text_table.render
       ~header:[ "jobs"; "eval"; "runs"; "events"; "events/s"; "gap" ]
       (List.map
          (fun (jobs, result, elapsed, _) ->
            [
              string_of_int jobs;
              Printf.sprintf "%.3f s" elapsed;
              string_of_int result.Experiments.Community.r_runs;
              string_of_int result.Experiments.Community.r_events;
              Printf.sprintf "%.0f"
                (float_of_int result.Experiments.Community.r_events
                /. elapsed);
              (if Experiments.Community.scrubbing_gap_holds result then
                 "holds"
               else "BROKEN");
            ])
          measured));
  (match measured with
  | (_, _, _, r0) :: rest ->
    let deterministic =
      List.for_all (fun (_, _, _, r) -> String.equal r r0) rest
    in
    say "   reports byte-identical at every job count: %b" deterministic;
    if not deterministic then (
      close_out oc;
      failwith "community suite: reports differ across job counts")
  | [] -> ());
  List.iter
    (fun (jobs, result, elapsed, _) ->
      let open Experiments.Community in
      let throughput = float_of_int result.r_events /. elapsed in
      if not (throughput > 0.0) then (
        close_out oc;
        failwith
          (Printf.sprintf
             "community suite: detection throughput is zero at jobs=%d" jobs));
      if not (scrubbing_gap_holds result) then (
        close_out oc;
        failwith
          (Printf.sprintf
             "community suite: scrubbing gap does not hold at jobs=%d" jobs));
      let reg = Obs.Registry.create () in
      Obs.Registry.Counter.add
        (Obs.Registry.counter reg "community_runs")
        result.r_runs;
      Obs.Registry.Counter.add
        (Obs.Registry.counter reg "community_watch_events")
        result.r_events;
      Obs.Registry.Counter.add
        (Obs.Registry.counter reg "community_values_scrubbed")
        result.r_scrubbed_values;
      List.iter
        (fun (reason, n) ->
          Obs.Registry.Counter.add
            (Obs.Registry.counter reg
               ~labels:
                 [ ("reason", Moas.Community_watch.reason_to_string reason) ]
               "community_alarms")
            n)
        result.r_reasons;
      Obs.Registry.Gauge.set
        (Obs.Registry.gauge reg "community_eval_seconds")
        elapsed;
      Obs.Registry.Gauge.set
        (Obs.Registry.gauge reg "community_events_per_second")
        throughput;
      List.iter
        (fun sc ->
          let arm =
            match sc.sc_arm with
            | Some a -> Collect.Scenario.arm_to_string a
            | None -> "overall"
          in
          let labels = [ ("arm", arm); ("detector", sc.sc_detector) ] in
          Obs.Registry.Gauge.set
            (Obs.Registry.gauge reg ~labels "community_precision")
            (Mutil.Stats.precision sc.sc_confusion);
          Obs.Registry.Gauge.set
            (Obs.Registry.gauge reg ~labels "community_recall")
            (Mutil.Stats.recall sc.sc_confusion);
          Obs.Registry.Gauge.set
            (Obs.Registry.gauge reg ~labels "community_f1")
            (Mutil.Stats.f1 sc.sc_confusion))
        result.r_scores;
      output_string oc
        (Obs.Registry.to_json_lines
           ~extra:
             (("workload", "community")
             :: ("corpus", if smoke then "smoke" else "full")
             :: ("jobs", string_of_int jobs)
             :: ("cores", cores)
             :: [ saturated jobs ])
           reg))
    measured;
  close_out oc;
  say "";
  say "community dump written to %s" out

(* ------------------------------------------------------------------ *)

let () =
  let smoke = ref false in
  let scaling_only = ref false in
  let no_scaling = ref false in
  let stream_only = ref false in
  let no_stream = ref false in
  let collect_only = ref false in
  let no_collect = ref false in
  let serve_only = ref false in
  let no_serve = ref false in
  let chaos_only = ref false in
  let no_chaos = ref false in
  let ingest_only = ref false in
  let no_ingest = ref false in
  let classify_only = ref false in
  let no_classify = ref false in
  let community_only = ref false in
  let no_community = ref false in
  let ingest_budget = ref 0.0 in
  let out = ref "BENCH_1.json" in
  let scaling_out = ref "BENCH_3.json" in
  let stream_out = ref "BENCH_4.json" in
  let collect_out = ref "BENCH_5.json" in
  let serve_out = ref "BENCH_6.json" in
  let chaos_out = ref "BENCH_7.json" in
  let ingest_out = ref "BENCH_8.json" in
  let classify_out = ref "BENCH_9.json" in
  let community_out = ref "BENCH_10.json" in
  let jobs = ref 0 in
  let spec =
    [
      ("--smoke", Arg.Set smoke, " figures + metrics dump only, skip Bechamel");
      ("--out", Arg.Set_string out, "FILE metrics dump destination (default BENCH_1.json)");
      ("--scaling-only", Arg.Set scaling_only, " run only the large-topology scaling suite");
      ("--no-scaling", Arg.Set no_scaling, " skip the large-topology scaling suite");
      ("--scaling-out", Arg.Set_string scaling_out, "FILE scaling dump destination (default BENCH_3.json)");
      ("--stream-only", Arg.Set stream_only, " run only the stream-monitor throughput suite");
      ("--no-stream", Arg.Set no_stream, " skip the stream-monitor throughput suite");
      ("--stream-out", Arg.Set_string stream_out, "FILE stream dump destination (default BENCH_4.json)");
      ("--collect-only", Arg.Set collect_only, " run only the collector-mesh suite");
      ("--no-collect", Arg.Set no_collect, " skip the collector-mesh suite");
      ("--collect-out", Arg.Set_string collect_out, "FILE collector-mesh dump destination (default BENCH_5.json)");
      ("--serve-only", Arg.Set serve_only, " run only the serve-daemon load-generator suite");
      ("--no-serve", Arg.Set no_serve, " skip the serve-daemon load-generator suite");
      ("--serve-out", Arg.Set_string serve_out, "FILE serve-daemon dump destination (default BENCH_6.json)");
      ("--chaos-only", Arg.Set chaos_only, " run only the resilience / chaos-transport suite");
      ("--no-chaos", Arg.Set no_chaos, " skip the resilience / chaos-transport suite");
      ("--chaos-out", Arg.Set_string chaos_out, "FILE resilience dump destination (default BENCH_7.json)");
      ("--ingest-only", Arg.Set ingest_only, " run only the GC-stamped ingest grid");
      ("--no-ingest", Arg.Set no_ingest, " skip the GC-stamped ingest grid");
      ("--ingest-out", Arg.Set_string ingest_out, "FILE ingest-grid dump destination (default BENCH_8.json)");
      ("--classify-only", Arg.Set classify_only, " run only the classifier corpus/training grid");
      ("--no-classify", Arg.Set no_classify, " skip the classifier corpus/training grid");
      ("--classify-out", Arg.Set_string classify_out, "FILE classifier-grid dump destination (default BENCH_9.json)");
      ("--community-only", Arg.Set community_only, " run only the community-telemetry head-to-head grid");
      ("--no-community", Arg.Set no_community, " skip the community-telemetry head-to-head grid");
      ("--community-out", Arg.Set_string community_out, "FILE community-grid dump destination (default BENCH_10.json)");
      ("--ingest-budget", Arg.Set_float ingest_budget, "WORDS fail if jobs=1 ingest allocates more minor words per event (default: off)");
      ("--jobs", Arg.Set_int jobs, "N worker domains for the figure sweeps (default MOAS_JOBS or the core count)");
    ]
  in
  Arg.parse (Arg.align spec)
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "main.exe [--smoke] [--out FILE] [--scaling-only] [--no-scaling] \
     [--scaling-out FILE] [--stream-only] [--no-stream] [--stream-out FILE] \
     [--collect-only] [--no-collect] [--collect-out FILE] [--serve-only] \
     [--no-serve] [--serve-out FILE] [--chaos-only] [--no-chaos] \
     [--chaos-out FILE] [--ingest-only] [--no-ingest] [--ingest-out FILE] \
     [--classify-only] [--no-classify] [--classify-out FILE] \
     [--community-only] [--no-community] [--community-out FILE] \
     [--ingest-budget WORDS] [--jobs N]";
  let jobs = if !jobs >= 1 then Some !jobs else None in
  if !scaling_only then run_scaling ~out:!scaling_out ()
  else if !stream_only then run_stream ~out:!stream_out ()
  else if !collect_only then run_collect_bench ~out:!collect_out ()
  else if !serve_only then run_serve_bench ~smoke:!smoke ~out:!serve_out ()
  else if !chaos_only then run_chaos_bench ~smoke:!smoke ~out:!chaos_out ()
  else if !ingest_only then
    run_ingest_bench ~smoke:!smoke ~budget:!ingest_budget ~out:!ingest_out ()
  else if !classify_only then
    run_classify_bench ~smoke:!smoke ~out:!classify_out ()
  else if !community_only then
    run_community_bench ~smoke:!smoke ~out:!community_out ()
  else begin
    let tracer = Obs.Span.create () in
    regenerate_figures ~tracer ?jobs ();
    let named_registries = run_instrumented_workloads () in
    banner "Phase timings (lib/obs spans)";
    print_string (Obs.Span.to_table tracer);
    write_dump ~out:!out ~tracer named_registries;
    if not !smoke then begin
      run_microbenches ();
      if not !no_scaling then run_scaling ~out:!scaling_out ();
      if not !no_stream then run_stream ~out:!stream_out ();
      if not !no_collect then run_collect_bench ~out:!collect_out ();
      if not !no_serve then run_serve_bench ~smoke:false ~out:!serve_out ();
      if not !no_chaos then run_chaos_bench ~smoke:false ~out:!chaos_out ();
      if not !no_ingest then
        run_ingest_bench ~smoke:false ~budget:!ingest_budget
          ~out:!ingest_out ();
      if not !no_classify then
        run_classify_bench ~smoke:false ~out:!classify_out ();
      if not !no_community then
        run_community_bench ~smoke:false ~out:!community_out ()
    end
  end;
  say "";
  say "done."
